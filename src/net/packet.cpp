#include "net/packet.h"

#include <cstdio>

#include "common/pool.h"

namespace dnsguard::net {

void Packet::release_payload() {
  BufferPool::local().release(std::move(payload));
  payload.clear();
}

std::uint16_t Packet::src_port() const {
  return is_udp() ? udp().src_port : tcp().src_port;
}

std::uint16_t Packet::dst_port() const {
  return is_udp() ? udp().dst_port : tcp().dst_port;
}

std::size_t Packet::wire_size() const {
  return kIpv4HeaderSize + (is_udp() ? kUdpHeaderSize : kTcpHeaderSize) +
         payload.size();
}

Bytes Packet::to_wire() const {
  ByteWriter w(wire_size());
  Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.ttl = ttl;
  ip.proto = is_udp() ? IpProto::Udp : IpProto::Tcp;
  std::size_t transport_size =
      (is_udp() ? kUdpHeaderSize : kTcpHeaderSize) + payload.size();
  ip.encode(w, transport_size);
  if (is_udp()) {
    udp().encode(w, payload.size());
  } else {
    tcp().encode(w);
  }
  w.raw(BytesView(payload));
  return std::move(w).take();
}

std::optional<Packet> Packet::from_wire(BytesView wire) {
  ByteReader r(wire);
  auto ip = Ipv4Header::decode(r);
  if (!ip) return std::nullopt;
  if (ip->total_length != wire.size()) return std::nullopt;

  Packet p;
  p.src_ip = ip->src;
  p.dst_ip = ip->dst;
  p.ttl = ip->ttl;

  if (ip->proto == IpProto::Udp) {
    auto udp = UdpHeader::decode(r);
    if (!udp) return std::nullopt;
    std::size_t payload_len = udp->length - kUdpHeaderSize;
    BytesView body = r.raw(payload_len);
    if (!r.ok()) return std::nullopt;
    p.transport = *udp;
    p.payload.assign(body.begin(), body.end());
  } else {
    auto tcp = TcpHeader::decode(r);
    if (!tcp) return std::nullopt;
    BytesView body = r.raw(r.remaining());
    p.transport = *tcp;
    p.payload.assign(body.begin(), body.end());
  }
  return p;
}

Packet Packet::make_udp(SocketAddr from, SocketAddr to, Bytes payload) {
  Packet p;
  p.src_ip = from.ip;
  p.dst_ip = to.ip;
  UdpHeader h;
  h.src_port = from.port;
  h.dst_port = to.port;
  h.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());
  p.transport = h;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::make_tcp(SocketAddr from, SocketAddr to, TcpFlags flags,
                        std::uint32_t seq, std::uint32_t ack, Bytes payload) {
  Packet p;
  p.src_ip = from.ip;
  p.dst_ip = to.ip;
  TcpHeader h;
  h.src_port = from.port;
  h.dst_port = to.port;
  h.flags = flags;
  h.seq = seq;
  h.ack = ack;
  p.transport = h;
  p.payload = std::move(payload);
  return p;
}

std::string Packet::summary() const {
  char buf[160];
  if (is_udp()) {
    std::snprintf(buf, sizeof buf, "UDP %s -> %s len=%zu",
                  src().to_string().c_str(), dst().to_string().c_str(),
                  payload.size());
  } else {
    const auto& h = tcp();
    std::snprintf(buf, sizeof buf,
                  "TCP %s -> %s %s%s%s%s%s seq=%u ack=%u len=%zu",
                  src().to_string().c_str(), dst().to_string().c_str(),
                  h.flags.syn ? "S" : "", h.flags.ack ? "A" : "",
                  h.flags.fin ? "F" : "", h.flags.rst ? "R" : "",
                  h.flags.psh ? "P" : "", h.seq, h.ack, payload.size());
  }
  return buf;
}

}  // namespace dnsguard::net
