#include "net/ipv4.h"

#include <cstdio>

namespace dnsguard::net {

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr_ >> 24) & 0xff,
                (addr_ >> 16) & 0xff, (addr_ >> 8) & 0xff, addr_ & 0xff);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  std::uint32_t parts[4];
  int part = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || part >= 3) return std::nullopt;
      parts[part++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || part != 3) return std::nullopt;
  parts[3] = cur;
  return Ipv4Address(static_cast<std::uint8_t>(parts[0]),
                     static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]),
                     static_cast<std::uint8_t>(parts[3]));
}

std::string SocketAddr::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace dnsguard::net
