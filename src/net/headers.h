// Wire-format IPv4, UDP and TCP headers.
//
// The simulator moves structured Packet objects, but every header can be
// serialized to and parsed from real wire format. Byte-accurate sizes
// matter: the paper's traffic-amplification analysis (§III.E, §III.G) is
// about response-vs-request *byte* ratios, so packet length accounting has
// to be faithful.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "net/ipv4.h"

namespace dnsguard::net {

inline constexpr std::size_t kIpv4HeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kTcpHeaderSize = 20;

/// RFC 791 Internet checksum over `data` (16-bit one's-complement sum).
[[nodiscard]] std::uint16_t internet_checksum(BytesView data);

enum class IpProto : std::uint8_t { Udp = 17, Tcp = 6 };

struct Ipv4Header {
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::Udp;
  std::uint8_t ttl = 64;
  std::uint16_t total_length = 0;  // header + payload, filled by encode
  std::uint16_t identification = 0;

  /// Serializes 20 bytes (no options) with a valid header checksum.
  void encode(ByteWriter& w, std::size_t payload_size) const;
  /// Parses and checksum-verifies a header. nullopt on truncation or bad
  /// checksum.
  [[nodiscard]] static std::optional<Ipv4Header> decode(ByteReader& r);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload, filled by encode

  void encode(ByteWriter& w, std::size_t payload_size) const;
  [[nodiscard]] static std::optional<UdpHeader> decode(ByteReader& r);
};

/// TCP flag bits (RFC 793 order within the flags byte).
struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;

  [[nodiscard]] std::uint8_t to_byte() const;
  [[nodiscard]] static TcpFlags from_byte(std::uint8_t b);
  [[nodiscard]] bool operator==(const TcpFlags&) const = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<TcpHeader> decode(ByteReader& r);
};

}  // namespace dnsguard::net
