// The Packet: the unit of traffic in the simulator.
//
// A Packet is a structured view of one IP datagram — addressing, transport
// header and payload — with exact wire serialization both ways. Components
// in the simulator (guards, servers, attackers) operate on the structured
// form; tests round-trip through the byte form to keep the structured view
// honest; and `wire_size()` drives byte-level accounting (link loads,
// amplification ratios).
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "net/headers.h"
#include "net/ipv4.h"

namespace dnsguard::net {

struct Packet {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint8_t ttl = 64;
  /// UDP or TCP transport header; the alternative chosen determines the IP
  /// protocol field on the wire.
  std::variant<UdpHeader, TcpHeader> transport = UdpHeader{};
  /// The transport payload (for DNS traffic, the DNS message bytes; for
  /// DNS-over-TCP, the 2-byte-length-framed stream chunk).
  Bytes payload;

  [[nodiscard]] bool is_udp() const {
    return std::holds_alternative<UdpHeader>(transport);
  }
  [[nodiscard]] bool is_tcp() const {
    return std::holds_alternative<TcpHeader>(transport);
  }
  [[nodiscard]] const UdpHeader& udp() const {
    return std::get<UdpHeader>(transport);
  }
  [[nodiscard]] UdpHeader& udp() { return std::get<UdpHeader>(transport); }
  [[nodiscard]] const TcpHeader& tcp() const {
    return std::get<TcpHeader>(transport);
  }
  [[nodiscard]] TcpHeader& tcp() { return std::get<TcpHeader>(transport); }

  [[nodiscard]] std::uint16_t src_port() const;
  [[nodiscard]] std::uint16_t dst_port() const;
  [[nodiscard]] SocketAddr src() const { return {src_ip, src_port()}; }
  [[nodiscard]] SocketAddr dst() const { return {dst_ip, dst_port()}; }

  /// Total on-wire size in bytes: IP header + transport header + payload.
  [[nodiscard]] std::size_t wire_size() const;

  /// Serializes the full datagram (IP + transport + payload).
  [[nodiscard]] Bytes to_wire() const;
  /// Parses a full datagram; nullopt on any malformation.
  [[nodiscard]] static std::optional<Packet> from_wire(BytesView wire);

  /// Builds a UDP datagram.
  [[nodiscard]] static Packet make_udp(SocketAddr from, SocketAddr to,
                                       Bytes payload);

  /// Builds a TCP segment.
  [[nodiscard]] static Packet make_tcp(SocketAddr from, SocketAddr to,
                                       TcpFlags flags, std::uint32_t seq,
                                       std::uint32_t ack, Bytes payload = {});

  /// Returns the payload buffer to the thread-local BufferPool (leaving it
  /// empty). Called by the node service loop once a packet is consumed, so
  /// dns::Message::encode_pooled() reuses the capacity instead of
  /// reallocating per packet.
  void release_payload();

  [[nodiscard]] std::string summary() const;
};

}  // namespace dnsguard::net
