#include "net/headers.h"

namespace dnsguard::net {

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::encode(ByteWriter& w, std::size_t payload_size) const {
  std::size_t start = w.size();
  std::uint16_t total = static_cast<std::uint16_t>(kIpv4HeaderSize + payload_size);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16(total);
  w.u16(identification);
  w.u16(0);  // flags/fragment offset: no fragmentation in the simulator
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(proto));
  std::size_t checksum_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  std::uint16_t csum =
      internet_checksum(w.view().subspan(start, kIpv4HeaderSize));
  w.patch_u16(checksum_at, csum);
}

std::optional<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  std::size_t start = r.pos();
  std::uint8_t ver_ihl = r.u8();
  if (!r.ok() || ver_ihl != 0x45) return std::nullopt;
  r.u8();  // DSCP/ECN
  Ipv4Header h;
  h.total_length = r.u16();
  h.identification = r.u16();
  r.u16();  // flags/fragment
  h.ttl = r.u8();
  std::uint8_t proto = r.u8();
  r.u16();  // checksum (verified below over the whole header)
  h.src = Ipv4Address(r.u32());
  h.dst = Ipv4Address(r.u32());
  if (!r.ok()) return std::nullopt;
  if (proto != static_cast<std::uint8_t>(IpProto::Udp) &&
      proto != static_cast<std::uint8_t>(IpProto::Tcp)) {
    return std::nullopt;
  }
  h.proto = static_cast<IpProto>(proto);
  // Checksum over the full header must come out zero-complement.
  BytesView hdr = r.whole().subspan(start, kIpv4HeaderSize);
  if (internet_checksum(hdr) != 0) return std::nullopt;
  return h;
}

void UdpHeader::encode(ByteWriter& w, std::size_t payload_size) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kUdpHeaderSize + payload_size));
  w.u16(0);  // checksum optional in IPv4; the simulator relies on IP csum
}

std::optional<UdpHeader> UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  r.u16();  // checksum
  if (!r.ok() || h.length < kUdpHeaderSize) return std::nullopt;
  return h;
}

std::uint8_t TcpFlags::to_byte() const {
  return static_cast<std::uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) |
                                   (rst ? 0x04 : 0) | (psh ? 0x08 : 0) |
                                   (ack ? 0x10 : 0));
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  return TcpFlags{.fin = (b & 0x01) != 0,
                  .syn = (b & 0x02) != 0,
                  .rst = (b & 0x04) != 0,
                  .psh = (b & 0x08) != 0,
                  .ack = (b & 0x10) != 0};
}

void TcpHeader::encode(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(0x50);  // data offset 5 (20 bytes), no options
  w.u8(flags.to_byte());
  w.u16(window);
  w.u16(0);  // checksum: simulator relies on IP csum
  w.u16(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  std::uint8_t offset = r.u8();
  h.flags = TcpFlags::from_byte(r.u8());
  h.window = r.u16();
  r.u16();  // checksum
  r.u16();  // urgent
  if (!r.ok() || (offset >> 4) != 5) return std::nullopt;
  return h;
}

}  // namespace dnsguard::net
