// Quickstart — protect an authoritative server with the DNS guard in
// ~60 lines of user code.
//
// Builds the paper's Fig. 1 world: a root/com/foo.com hierarchy, an
// unmodified recursive resolver (LRS), and a DNS guard deployed in front
// of the root server using the transparent NS-name cookie scheme. Then
// resolves a name end-to-end and prints what each component saw.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

using namespace dnsguard;
using net::Ipv4Address;

int main() {
  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));  // 0.4 ms LAN RTT

  // --- the DNS hierarchy of Fig. 1 -----------------------------------------
  const Ipv4Address root_ip(10, 1, 1, 254), com_ip(10, 0, 0, 2),
      foo_ip(10, 0, 0, 3), lrs_ip(10, 0, 1, 1);
  auto zones = server::make_example_hierarchy(root_ip, com_ip, foo_ip);

  server::AuthoritativeServerNode root(sim, "root", {.address = root_ip});
  server::AuthoritativeServerNode com(sim, "com", {.address = com_ip});
  server::AuthoritativeServerNode foo(sim, "foo", {.address = foo_ip});
  root.add_zone(std::move(zones.root));
  com.add_zone(std::move(zones.com));
  foo.add_zone(std::move(zones.foo_com));
  sim.add_host_route(com_ip, &com);
  sim.add_host_route(foo_ip, &foo);

  // --- an unmodified recursive resolver -------------------------------------
  server::RecursiveResolverNode::Config rc;
  rc.address = lrs_ip;
  rc.root_hints = {root_ip};
  server::RecursiveResolverNode lrs(sim, "lrs", rc);
  sim.add_host_route(lrs_ip, &lrs);

  // --- the DNS guard, in front of the root server ---------------------------
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = Ipv4Address(10, 1, 1, 253);
  gc.ans_address = root_ip;
  gc.protected_zone = dns::DomainName{};       // it guards the root zone
  gc.subnet_base = Ipv4Address(10, 1, 1, 0);   // its intercepted subnet
  gc.scheme = guard::Scheme::NsName;           // transparent NS-name cookies
  guard::RemoteGuardNode guard(sim, "guard", gc, &root);
  guard.install();  // takes over routing for the root's address

  // --- resolve a name through the guarded hierarchy -------------------------
  std::printf("resolving www.foo.com through the guarded root...\n");
  lrs.resolve(*dns::DomainName::parse("www.foo.com"), dns::RrType::A,
              [](const server::RecursiveResolverNode::Result& r) {
                std::printf("=> rcode=%d, %zu answer records, %.2f ms\n",
                            static_cast<int>(r.rcode), r.answers.size(),
                            r.elapsed.millis());
                for (const auto& rr : r.answers) {
                  std::printf("   %s\n", rr.to_string().c_str());
                }
              });
  sim.run_for(seconds(5));

  const auto& g = guard.guard_stats();
  std::printf(
      "\nwhat the guard did (invisible to both the LRS and the root):\n"
      "  fabricated referrals (cookie handed out): %llu\n"
      "  cookie checks passed:                     %llu\n"
      "  spoofed requests dropped:                 %llu\n"
      "  queries forwarded to the real root:       %llu\n",
      static_cast<unsigned long long>(g.fabricated_referrals),
      static_cast<unsigned long long>(g.cookie_checks),
      static_cast<unsigned long long>(g.spoofs_dropped),
      static_cast<unsigned long long>(g.forwarded_to_ans));
  std::printf("root server answered %llu queries in total.\n",
              static_cast<unsigned long long>(root.ans_stats().udp_queries));
  return 0;
}
