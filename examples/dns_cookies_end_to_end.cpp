// Scenario — the modified-DNS scheme end to end: the 2006 ancestor of
// RFC 7873 DNS Cookies.
//
// A local DNS guard sits in front of an unmodified recursive resolver and
// a remote DNS guard in front of the authoritative server for foo.com;
// neither the resolver nor the server knows cookies exist. The example
// walks through: (1) first contact — explicit cookie exchange; (2) cached
// cookie reuse ("1 cookie per ANS", Table I); (3) weekly key rotation
// (§III.E) — old cookies stay valid for one generation; (4) incremental
// deployment — unguarded servers keep working through the local guard.
//
//   ./build/examples/dns_cookies_end_to_end
#include <cstdio>

#include "guard/local_guard.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

using namespace dnsguard;
using net::Ipv4Address;

namespace {

void resolve_and_print(sim::Simulator& sim,
                       server::RecursiveResolverNode& lrs, const char* name) {
  lrs.resolve(*dns::DomainName::parse(name), dns::RrType::A,
              [name](const server::RecursiveResolverNode::Result& r) {
                std::printf("  %-18s -> rcode=%d, %zu records, %.2f ms\n",
                            name, static_cast<int>(r.rcode),
                            r.answers.size(), r.elapsed.millis());
              });
  sim.run_for(seconds(5));
}

}  // namespace

int main() {
  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));

  const Ipv4Address root_ip(10, 0, 0, 1), com_ip(10, 0, 0, 2),
      foo_ip(10, 2, 2, 254), lrs_ip(10, 0, 1, 1);
  auto zones = server::make_example_hierarchy(root_ip, com_ip, foo_ip);
  server::AuthoritativeServerNode root(sim, "root", {.address = root_ip});
  server::AuthoritativeServerNode com(sim, "com", {.address = com_ip});
  server::AuthoritativeServerNode foo(sim, "foo", {.address = foo_ip});
  root.add_zone(std::move(zones.root));
  com.add_zone(std::move(zones.com));
  foo.add_zone(std::move(zones.foo_com));
  sim.add_host_route(root_ip, &root);
  sim.add_host_route(com_ip, &com);

  server::RecursiveResolverNode::Config rc;
  rc.address = lrs_ip;
  rc.root_hints = {root_ip};
  server::RecursiveResolverNode lrs(sim, "lrs", rc);

  // Remote guard in front of foo.com's server only (incremental rollout:
  // root and com stay unguarded).
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = Ipv4Address(10, 2, 2, 253);
  gc.ans_address = foo_ip;
  gc.protected_zone = *dns::DomainName::parse("foo.com.");
  gc.subnet_base = Ipv4Address(10, 2, 2, 0);
  gc.scheme = guard::Scheme::ModifiedDns;
  guard::RemoteGuardNode remote_guard(sim, "remote-guard", gc, &foo);
  remote_guard.install();

  // Local guard in front of the resolver.
  guard::LocalGuardNode local_guard(
      sim, "local-guard",
      guard::LocalGuardNode::Config{.lrs_address = lrs_ip}, &lrs);
  local_guard.install();

  std::printf("1) first contact: explicit cookie exchange (2 RTT)\n");
  resolve_and_print(sim, lrs, "www.foo.com");
  std::printf("   cookie requests sent: %llu, cookies cached: %llu\n",
              static_cast<unsigned long long>(
                  local_guard.local_stats().cookie_requests),
              static_cast<unsigned long long>(
                  local_guard.local_stats().cookies_cached));

  std::printf("\n2) cached cookie: subsequent queries are 1 RTT, no new "
              "exchange\n");
  resolve_and_print(sim, lrs, "mail.foo.com");
  std::printf("   cookie requests sent (total): %llu  (unchanged)\n",
              static_cast<unsigned long long>(
                  local_guard.local_stats().cookie_requests));

  std::printf("\n3) key rotation: the guard rotates its 76-byte key; the\n"
              "   cached cookie (previous generation) still verifies\n");
  remote_guard.cookie_engine().rotate(/*new_seed=*/20260706);
  lrs.cache().evict(*dns::DomainName::parse("mail.foo.com."),
                    dns::RrType::A);
  resolve_and_print(sim, lrs, "mail.foo.com");
  std::printf("   spoofs dropped so far: %llu (zero means the old-generation "
              "cookie passed)\n",
              static_cast<unsigned long long>(
                  remote_guard.guard_stats().spoofs_dropped));

  std::printf("\n4) incremental deployment: root/com have no guard and were\n"
              "   probed once each, then served plainly\n");
  std::printf("   responses delivered through local guard: %llu\n",
              static_cast<unsigned long long>(
                  local_guard.local_stats().responses_delivered));
  std::printf("   queries released without cookie (unguarded servers): "
              "%llu\n",
              static_cast<unsigned long long>(
                  local_guard.local_stats().released_without_cookie));
  return 0;
}
