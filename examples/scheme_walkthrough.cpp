// Walkthrough — a packet-by-packet trace of every cookie scheme.
//
// Attaches a tap to the simulated network and prints each packet as it
// crosses a wire, annotated with the DNS message inside, so you can watch
// the exact message sequences of Fig. 2(a), Fig. 2(b), the TCP redirect,
// and Fig. 3 happen between an LRS driver, the guard, and the server.
//
//   ./build/examples/scheme_walkthrough
#include <cstdio>
#include <string>

#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

using namespace dnsguard;
using net::Ipv4Address;

namespace {

std::string describe(const net::Packet& p) {
  if (p.is_tcp()) {
    const auto& h = p.tcp();
    std::string flags;
    if (h.flags.syn) flags += "SYN ";
    if (h.flags.ack) flags += "ACK ";
    if (h.flags.fin) flags += "FIN ";
    if (h.flags.rst) flags += "RST ";
    if (h.flags.psh) flags += "PSH ";
    return "TCP " + flags + (p.payload.empty()
                                 ? ""
                                 : "(" + std::to_string(p.payload.size()) +
                                       "B data)");
  }
  auto m = dns::Message::decode(BytesView(p.payload));
  if (!m) return "UDP (unparsed)";
  std::string out = m->header.qr ? "resp " : "query ";
  if (const auto* q = m->question()) out += q->to_string();
  if (m->header.tc) out += " [TC]";
  for (const auto& rr : m->answers) out += " | AN " + rr.to_string();
  for (const auto& rr : m->authority) out += " | NS " + rr.to_string();
  for (const auto& rr : m->additional) {
    if (rr.type == dns::RrType::TXT && rr.name.is_root()) {
      out += " | COOKIE(txt)";
    } else {
      out += " | AR " + rr.to_string();
    }
  }
  return out;
}

void walkthrough(guard::Scheme scheme, workload::DriveMode mode,
                 const char* title) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");

  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));
  const Ipv4Address ans_ip(10, 1, 1, 254);

  server::AnsSimulatorNode ans(sim, "server",
                               {.address = ans_ip});
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = Ipv4Address(10, 1, 1, 253);
  gc.ans_address = ans_ip;
  gc.protected_zone = dns::DomainName{};
  gc.subnet_base = Ipv4Address(10, 1, 1, 0);
  gc.scheme = scheme;
  guard::RemoteGuardNode guard(sim, "guard", gc, &ans);
  guard.install();

  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 1, 1);
  dc.target = {ans_ip, net::kDnsPort};
  dc.mode = mode;
  dc.concurrency = 1;
  dc.timeout = milliseconds(100);
  workload::LrsSimulatorNode lrs(sim, "LRS", dc);
  sim.add_host_route(dc.address, &lrs);

  int shown = 0;
  sim.set_tap([&](SimTime t, const sim::Node* from, const sim::Node* to,
                  const net::Packet& p) {
    if (shown >= 14) return;  // one full request's worth of traffic
    ++shown;
    std::printf("  t=%7.3fms  %-6s -> %-6s  %s\n", t.ns / 1e6,
                from ? from->name().c_str() : "?",
                to ? to->name().c_str() : "?", describe(p).c_str());
  });

  lrs.start();
  sim.run_for(milliseconds(30));
  lrs.stop();
  sim.clear_tap();
  std::printf("\n");
}

}  // namespace

int main() {
  walkthrough(guard::Scheme::NsName, workload::DriveMode::NsNameMiss,
              "1. DNS-based, NS-name variant (Fig. 2(a)): cookie in a "
              "fabricated referral name");
  walkthrough(guard::Scheme::FabricatedNsIp,
              workload::DriveMode::FabricatedMiss,
              "2. DNS-based, fabricated NS name + IP (Fig. 2(b)): second "
              "cookie is the destination address");
  walkthrough(guard::Scheme::TcpRedirect, workload::DriveMode::TcpWithRedirect,
              "3. TCP-based (3.C): truncation redirect, SYN-cookie "
              "handshake, kernel proxy");
  walkthrough(guard::Scheme::ModifiedDns, workload::DriveMode::ModifiedMiss,
              "4. Modified DNS (Fig. 3): explicit cookie exchange in a TXT "
              "record");
  return 0;
}
