// Scenario — a root-style DNS server under a spoofing DoS flood, with the
// guard switched on mid-attack.
//
// This is the paper's motivating story (§I: seven of thirteen root
// servers knocked out for an hour). A BIND-capacity server (14K req/s)
// serves two legitimate recursive drivers while a 40K req/s spoofed flood
// arrives. We let the attack crush the server for a while, then deploy
// the DNS guard (as the paper notes, "it can even be deployed only when a
// DoS attack arises") and watch legitimate service recover.
//
//   ./build/examples/protect_root_server
#include <cstdio>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/zone.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

using namespace dnsguard;
using net::Ipv4Address;

namespace {

void report(const char* phase, SimDuration window,
            workload::LrsSimulatorNode& legit,
            server::AuthoritativeServerNode& ans, double attack_rate) {
  std::printf("%-28s attack=%5.0fK/s  legit-served=%6.0f/s  ans-cpu=%4.0f%%\n",
              phase, attack_rate / 1000.0,
              static_cast<double>(legit.driver_stats().completed) /
                  window.seconds(),
              ans.utilization(window) * 100.0);
}

}  // namespace

int main() {
  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));

  const Ipv4Address root_ip(10, 1, 1, 254);
  server::AuthoritativeServerNode::Config ac;
  ac.address = root_ip;
  server::AuthoritativeServerNode root(sim, "root", ac);
  server::Zone zone(dns::DomainName{});
  zone.add_soa();
  zone.add_ns("com.", "a.gtld-servers.net.");
  zone.add_a("a.gtld-servers.net.", Ipv4Address(10, 0, 0, 2));
  root.add_zone(std::move(zone));
  sim.add_host_route(root_ip, &root);

  // A paced legitimate requester: ~2K req/s healthy, 2 s retry timer.
  workload::LrsSimulatorNode::Config lc;
  lc.address = Ipv4Address(10, 0, 1, 1);
  lc.target = {root_ip, net::kDnsPort};
  lc.mode = workload::DriveMode::NsNameHit;  // speaks plain DNS; learns
                                             // whatever referral it gets
  lc.concurrency = 40;
  lc.timeout = seconds(2);
  lc.think_time = milliseconds(18);
  workload::LrsSimulatorNode legit(sim, "legit", lc);
  sim.add_host_route(lc.address, &legit);

  attack::SpoofedFloodNode attacker(
      sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {root_ip, net::kDnsPort},
                                    .rate = 40000,
                                    .qname_base = "www.victim.com."});

  std::printf("phase 1: peacetime\n");
  legit.start();
  sim.run_for(seconds(2));
  legit.reset_driver_stats();
  root.reset_stats();
  sim.run_for(seconds(3));
  report("  no attack, no guard:", seconds(3), legit, root, 0);

  std::printf("\nphase 2: 40K req/s spoofed flood hits the naked server\n");
  attacker.start();
  sim.run_for(seconds(2));
  legit.reset_driver_stats();
  root.reset_stats();
  sim.run_for(seconds(6));
  report("  under attack, no guard:", seconds(6), legit, root, 40000);

  std::printf("\nphase 3: DNS guard deployed in front of the server\n");
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = Ipv4Address(10, 1, 1, 253);
  gc.ans_address = root_ip;
  gc.protected_zone = dns::DomainName{};
  gc.subnet_base = Ipv4Address(10, 1, 1, 0);
  gc.scheme = guard::Scheme::NsName;
  gc.rl1.per_address_rate = 1e6;  // don't throttle our own legit driver
  gc.rl1.per_address_burst = 1e5;
  gc.rl2.per_host_rate = 1e6;
  gc.rl2.per_host_burst = 1e5;
  sim.remove_routes_to(&root);
  guard::RemoteGuardNode guard(sim, "guard", gc, &root);
  guard.install();

  sim.run_for(seconds(3));  // let the legit driver re-learn its cookie
  legit.reset_driver_stats();
  root.reset_stats();
  guard.reset_guard_stats();
  sim.run_for(seconds(6));
  report("  under attack, guarded:", seconds(6), legit, root, 40000);

  const auto& g = guard.guard_stats();
  std::printf(
      "\nguard counters during the last window:\n"
      "  spoofed requests absorbed (no valid cookie): %llu\n"
      "  legitimate cookie checks passed:             %llu\n"
      "  requests reaching the real server:           %llu\n",
      static_cast<unsigned long long>(g.fabricated_referrals +
                                      g.spoofs_dropped + g.rl1_throttled),
      static_cast<unsigned long long>(g.cookie_checks - g.spoofs_dropped),
      static_cast<unsigned long long>(g.forwarded_to_ans));

  attacker.stop();
  legit.stop();
  return 0;
}
