// Scenario — DNS amplification attack against a third-party victim,
// with and without the guard (§I attack strategy 2, §III.G).
//
// The attacker sends small queries for a name with a large answer set,
// spoofing the victim's address: "a 50-byte request for a 500-byte
// response... an attacker can starve the bandwidth of its victims even if
// his bandwidth is 10 times smaller."
//
// Unprotected, the server reflects the amplified responses at the victim.
// Behind the guard, the unverified request earns only a small fabricated
// referral (< 50% amplification) and Rate-Limiter1 throttles even that,
// so the victim sees a trickle.
//
//   ./build/examples/amplification_defense
#include <cstdio>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

using namespace dnsguard;
using net::Ipv4Address;

namespace {

struct Outcome {
  std::uint64_t attack_bytes;
  std::uint64_t victim_bytes;
};

Outcome run(bool guarded) {
  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));

  const Ipv4Address ans_ip(10, 1, 1, 254);
  server::AuthoritativeServerNode ans(sim, "ans", {.address = ans_ip});
  // An amplification-friendly record set: one name, 25 addresses
  // (~400 bytes of extra answer).
  server::Zone zone(*dns::DomainName::parse("big.example."));
  zone.add_soa();
  for (int i = 0; i < 25; ++i) {
    zone.add_a("huge.big.example.",
               Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(i)));
  }
  ans.add_zone(std::move(zone));
  sim.add_host_route(ans_ip, &ans);

  attack::VictimNode victim(sim, "victim", Ipv4Address(10, 99, 0, 1));
  sim.add_host_route(Ipv4Address(10, 99, 0, 1), &victim);

  std::unique_ptr<guard::RemoteGuardNode> guard;
  if (guarded) {
    guard::RemoteGuardNode::Config gc;
    gc.guard_address = Ipv4Address(10, 1, 1, 253);
    gc.ans_address = ans_ip;
    gc.protected_zone = *dns::DomainName::parse("big.example.");
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = guard::Scheme::NsName;
    // Paper-default Rate-Limiter1: reflector protection on.
    sim.remove_routes_to(&ans);
    guard = std::make_unique<guard::RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }

  attack::SpoofedFloodNode attacker(
      sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {ans_ip, net::kDnsPort},
                                    .rate = 5000,
                                    .qname_base = "huge.big.example."},
      attack::SpoofedFloodNode::SpoofConfig{
          .spoof_base = Ipv4Address(10, 99, 0, 1), .spoof_range = 1});
  attacker.start();
  sim.run_for(seconds(2));
  attacker.stop();

  // Attack bytes: ~5000 req/s x 2 s x request wire size (~55+28 B).
  Outcome out;
  out.attack_bytes = attacker.flood_stats().sent * 85;  // approx wire size
  out.victim_bytes = victim.bytes_received();
  return out;
}

}  // namespace

int main() {
  std::printf("Amplification attack: 5K spoofed req/s for 2 s, victim "
              "10.99.0.1\n\n");
  Outcome naked = run(/*guarded=*/false);
  Outcome guarded = run(/*guarded=*/true);

  auto factor = [](const Outcome& o) {
    return o.attack_bytes > 0
               ? static_cast<double>(o.victim_bytes) /
                     static_cast<double>(o.attack_bytes)
               : 0.0;
  };
  std::printf("unprotected server:\n");
  std::printf("  attacker spent ~%llu KB, victim received %llu KB "
              "(amplification x%.1f)\n",
              static_cast<unsigned long long>(naked.attack_bytes / 1024),
              static_cast<unsigned long long>(naked.victim_bytes / 1024),
              factor(naked));
  std::printf("guarded server (NS-name cookies + Rate-Limiter1):\n");
  std::printf("  attacker spent ~%llu KB, victim received %llu KB "
              "(amplification x%.2f)\n",
              static_cast<unsigned long long>(guarded.attack_bytes / 1024),
              static_cast<unsigned long long>(guarded.victim_bytes / 1024),
              factor(guarded));
  std::printf("\nThe guard answers unverified requests with small fabricated\n"
              "referrals and throttles repeat cookie responses per victim,\n"
              "so the reflection factor collapses below 1.\n");
  return 0;
}
