// Table II — Average DNS request latency (ms) for different spoof
// detection schemes, cache miss (first access) vs cache hit.
//
// Paper setup (§IV.B): ANS on a campus network, LRS behind a cable modem,
// average RTT 10.9 ms. Paper numbers:
//
//                 NS name  Fabricated  TCP-based  Modified DNS
//   Cache Miss      21.0      32.1/34.5    34.5       22.4
//   Cache Hit       11.1      11.3         33.7       10.8
//
// (Columns per paper: NS name 21.0/11.1, Fabricated 32.1->34.5 worst-case
// ordering per text; we report our measured means.)
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct Row {
  const char* label;
  DriveMode miss;
  DriveMode hit;
  double paper_miss_ms;
  double paper_hit_ms;
  guard::Scheme scheme;
};

double measure_latency(guard::Scheme scheme, DriveMode mode) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(scheme);
  // Internet path: one-way 5.45 ms => RTT 10.9 ms as in §IV.B.
  auto* driver = bed.add_driver(mode, /*concurrency=*/1,
                                net::Ipv4Address(10, 0, 1, 1),
                                /*timeout=*/milliseconds(200));
  bed.sim.set_latency(driver, bed.guard.get(), microseconds(5450));
  bed.measure(/*warmup=*/milliseconds(500), /*window=*/seconds(4));
  return driver->latencies().mean();
}

}  // namespace

int main() {
  std::printf(
      "TABLE II: Average DNS request latency (ms); RTT = 10.9 ms (paper "
      "%sIV.B)\n\n",
      "\xc2\xa7");

  const Row rows[] = {
      {"dns-based/ns-name", DriveMode::NsNameMiss, DriveMode::NsNameHit, 21.0,
       11.1, guard::Scheme::NsName},
      {"dns-based/fabricated", DriveMode::FabricatedMiss,
       DriveMode::FabricatedHit, 34.5, 11.3, guard::Scheme::FabricatedNsIp},
      {"tcp-based", DriveMode::TcpWithRedirect, DriveMode::TcpWithRedirect, 32.1,
       33.7, guard::Scheme::TcpRedirect},
      {"modified-dns", DriveMode::ModifiedMiss, DriveMode::ModifiedHit, 22.4,
       10.8, guard::Scheme::ModifiedDns},
  };

  TablePrinter table({"scheme", "miss(ms)", "paper", "hit(ms)", "paper"}, 22);
  table.print_header();
  for (const Row& row : rows) {
    double miss = measure_latency(row.scheme, row.miss);
    double hit = measure_latency(row.scheme, row.hit);
    table.print_row({row.label, TablePrinter::num(miss, 1),
                     TablePrinter::num(row.paper_miss_ms, 1),
                     TablePrinter::num(hit, 1),
                     TablePrinter::num(row.paper_hit_ms, 1)});
  }
  std::printf(
      "\nShape checks: all hits ~1 RTT except tcp-based (always 3 RTT);\n"
      "misses: ns-name/modified ~2 RTT, fabricated/tcp ~3 RTT.\n");
  return 0;
}
