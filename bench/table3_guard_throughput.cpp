// Table III — Average DNS request throughput (requests/sec) for different
// spoof detection schemes between an ANS simulator and an LRS simulator
// (§IV.D), cache miss vs cache hit. Paper numbers:
//
//                 NS name  Fabricated  TCP-based  Modified DNS
//   Cache Miss     84.2K     60.1K       22.7K       84.3K
//   Cache Hit     110.1K    109.7K       22.7K      110.3K
//
// Hits are capped by the ANS simulator (~110K/s); misses by the guard CPU
// (cookie computations + packets per request).
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

double measure_throughput(guard::Scheme scheme, DriveMode mode,
                          int concurrency, JsonResultWriter* json = nullptr,
                          const std::string& counter_prefix = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(scheme);
  auto* driver = bed.add_driver(mode, concurrency);
  // Journey tracing and counter sampling run on every row: they operate
  // in virtual time and charge no simulated CPU, so the throughput
  // numbers must not move — the committed baseline enforces that (the
  // wall-clock cost is the only real overhead, and it is unmeasured by
  // design here).
  bed.enable_journeys = true;
  bed.timeseries_window = quick(milliseconds(250), milliseconds(100));
  SimDuration window = bed.measure(quick(milliseconds(500), milliseconds(200)),
                                   quick(seconds(2), milliseconds(500)));
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics(), counter_prefix);
    json->add_section("timeseries", bed.sim.timeseries().to_json(2));
  }
  return static_cast<double>(driver->driver_stats().completed) /
         window.seconds();
}

}  // namespace

int main() {
  std::printf(
      "TABLE III: Average DNS request throughput (requests/sec), ANS "
      "simulator + LRS simulator (paper %sIV.D)\n\n",
      "\xc2\xa7");

  struct Row {
    const char* label;
    guard::Scheme scheme;
    DriveMode miss;
    DriveMode hit;
    int conc_miss;
    int conc_hit;
    double paper_miss;
    double paper_hit;
  };
  const Row rows[] = {
      {"dns-based/ns-name", guard::Scheme::NsName, DriveMode::NsNameMiss,
       DriveMode::NsNameHit, 256, 256, 84200, 110100},
      {"dns-based/fabricated", guard::Scheme::FabricatedNsIp,
       DriveMode::FabricatedMiss, DriveMode::FabricatedHit, 256, 256, 60100,
       109700},
      {"tcp-based", guard::Scheme::TcpRedirect, DriveMode::TcpWithRedirect,
       DriveMode::TcpWithRedirect, 50, 50, 22700, 22700},
      {"modified-dns", guard::Scheme::ModifiedDns, DriveMode::ModifiedMiss,
       DriveMode::ModifiedHit, 256, 256, 84300, 110300},
  };

  TablePrinter table(
      {"scheme", "miss(req/s)", "paper", "hit(req/s)", "paper"}, 22);
  table.print_header();
  JsonResultWriter json("table3_guard_throughput");
  for (const Row& row : rows) {
    // Counters snapshot for the first (ns-name miss) run only: one
    // representative registry dump keeps the JSON bounded.
    bool first = &row == &rows[0];
    double miss = measure_throughput(row.scheme, row.miss, row.conc_miss,
                                     first ? &json : nullptr,
                                     "ns_name_miss.");
    double hit = measure_throughput(row.scheme, row.hit, row.conc_hit);
    table.print_row({row.label, TablePrinter::kilo(miss),
                     TablePrinter::kilo(row.paper_miss),
                     TablePrinter::kilo(hit),
                     TablePrinter::kilo(row.paper_hit)});
    json.add(std::string(row.label) + "_miss_rps", miss);
    json.add(std::string(row.label) + "_hit_rps", hit);
  }
  json.write();
  std::printf(
      "\nShape checks: miss ranking modified ~ ns-name > fabricated > tcp;\n"
      "all UDP hit rows capped by the ~110K/s ANS simulator; TCP flat.\n");
  return 0;
}
