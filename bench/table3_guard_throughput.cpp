// Table III — Average DNS request throughput (requests/sec) for different
// spoof detection schemes between an ANS simulator and an LRS simulator
// (§IV.D), cache miss vs cache hit. Paper numbers:
//
//                 NS name  Fabricated  TCP-based  Modified DNS
//   Cache Miss     84.2K     60.1K       22.7K       84.3K
//   Cache Hit     110.1K    109.7K       22.7K      110.3K
//
// Hits are capped by the ANS simulator (~110K/s); misses by the guard CPU
// (cookie computations + packets per request).
//
// This bench also anchors the cost-attribution profiler (ROADMAP item 5:
// where do the miss path's extra nanoseconds go?): every row captures a
// per-stage wall-cost profile into the "profile" JSON section, and an
// interleaved A/B gate asserts that enabling the profiler costs <= 2% of
// host wall time.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct RowResult {
  double rps = 0.0;
  /// Fraction of the window's wall time attributed under the profiler's
  /// root (the non-double-counting coverage figure); 0 when not profiled.
  double coverage = 0.0;
};

RowResult measure_throughput(guard::Scheme scheme, DriveMode mode,
                             int concurrency,
                             JsonResultWriter* json = nullptr,
                             const std::string& counter_prefix = "",
                             ProfileCollector* prof = nullptr,
                             const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(scheme);
  auto* driver = bed.add_driver(mode, concurrency);
  // Journey tracing and counter sampling run on every row: they operate
  // in virtual time and charge no simulated CPU, so the throughput
  // numbers must not move — the committed baseline enforces that. The
  // profiler likewise charges no *simulated* CPU (virtual results stay
  // bit-identical); its wall cost is bounded by the overhead gate below.
  bed.enable_journeys = true;
  bed.timeseries_window = quick(milliseconds(250), milliseconds(100));
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(milliseconds(500), milliseconds(200)),
                                   quick(seconds(2), milliseconds(500)));
  RowResult out;
  if (prof != nullptr) {
    prof->capture(prof_label, bed.last_wall_ns);
    if (bed.last_wall_ns > 0) {
      out.coverage =
          obs::prof::profiler.report().root_total_ns() / bed.last_wall_ns;
    }
  }
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics(), counter_prefix);
    json->add_section("timeseries", bed.sim.timeseries().to_json(2));
  }
  out.rps = static_cast<double>(driver->driver_stats().completed) /
            window.seconds();
  return out;
}

/// Profiler overhead gate: one warmed-up testbed on the ns-name hit row
/// (the highest-throughput path, so the most probe-sensitive), then
/// alternating ~50 ms profiled / unprofiled *slices* of the same
/// steady-state run. Slice-level interleaving is what makes a 2% gate
/// measurable on a noisy host: run-level A/B showed +-3% wall noise on
/// shared machines, swamping the effect, while toggling mid-run costs
/// nothing because enable()/disable() keep the cell matrix. Returns the
/// enabled/disabled interquartile-mean ratio plus its standard error, so
/// the caller can gate with statistical confidence instead of flaking
/// whenever the host gets busy (see the estimator note below).
struct OverheadGate {
  double ratio = 1.0;
  double se = 0.0;
};

OverheadGate profiler_overhead_ratio() {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::NsName);
  auto* driver = bed.add_driver(DriveMode::NsNameHit, 256);
  driver->start();
  bed.sim.run_for(quick(milliseconds(500), milliseconds(200)));
  obs::prof::profiler.enable();
  obs::prof::profiler.set_sampling(bed.profile_sample_stride,
                                   bed.profile_sample_block);
  obs::prof::profiler.reset();
  obs::prof::profiler.disable();
  // Interleaved ABBA blocks of *short* (~1 ms CPU) slices of the same
  // steady-state run, each timed in thread CPU time; the gate returns
  // the interquartile mean of the per-block on/off ratios. Slices this
  // short matter:
  // per-slice cost on a shared host wanders +-10% at the 30 ms scale
  // (frequency scaling, hypervisor steal), but those states persist for
  // a few milliseconds, so the four slices inside one short block see
  // nearly the same host state and their ratio cancels it. Hundreds of
  // blocks then shrink the estimator's standard error below the gate's
  // margin, and taking the interquartile mean discards blocks straddling
  // a host state change. Every slice replays the same deterministic
  // virtual load, so arms differ only by probe overhead.
  const int blocks = quick(1000, 800);
  const SimDuration slice = quick(milliseconds(4), milliseconds(2));
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(blocks));
  auto run_slice = [&](bool on) {
    if (on) {
      obs::prof::profiler.enable();
    } else {
      obs::prof::profiler.disable();
    }
    const double t0 = thread_cpu_seconds();
    bed.sim.run_for(slice);
    return thread_cpu_seconds() - t0;
  };
  for (int k = 0; k < blocks; ++k) {
    double on_cpu = run_slice(true);
    double off_cpu = run_slice(false);
    off_cpu += run_slice(false);
    on_cpu += run_slice(true);
    if (off_cpu > 0) ratios.push_back(on_cpu / off_cpu);
  }
  obs::prof::profiler.disable();
  driver->stop();
  OverheadGate gate;
  if (ratios.empty()) return gate;
  std::sort(ratios.begin(), ratios.end());
  if (std::getenv("DNSGUARD_PROF_GATE_DEBUG") != nullptr) {
    std::printf("gate block ratios p10/p25/p50/p75/p90:");
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
      std::printf(" %.4f",
                  ratios[static_cast<std::size_t>(
                      q * static_cast<double>(ratios.size() - 1))]);
    }
    std::printf("  (n=%zu)\n", ratios.size());
  }
  // Interquartile mean: robust to the heavy tails, ~40% lower standard
  // error than the median at this sample size. The SE of the central-half
  // values rides along so main() can gate with confidence bounds — on a
  // quiet host it is ~0.2%, and when the machine is too busy to resolve
  // a 2% effect it widens honestly instead of producing a flaky verdict.
  const std::size_t q1 = ratios.size() / 4;
  const std::size_t q3 = ratios.size() - q1;
  const std::size_t m = q3 - q1;
  double sum = 0.0;
  for (std::size_t i = q1; i < q3; ++i) sum += ratios[i];
  gate.ratio = sum / static_cast<double>(m);
  double var = 0.0;
  for (std::size_t i = q1; i < q3; ++i) {
    var += (ratios[i] - gate.ratio) * (ratios[i] - gate.ratio);
  }
  if (m > 1) {
    gate.se = std::sqrt(var / static_cast<double>(m - 1) /
                        static_cast<double>(m));
  }
  return gate;
}

}  // namespace

int main() {
  std::printf(
      "TABLE III: Average DNS request throughput (requests/sec), ANS "
      "simulator + LRS simulator (paper %sIV.D)\n\n",
      "\xc2\xa7");

  struct Row {
    const char* label;
    const char* prof_label;
    guard::Scheme scheme;
    DriveMode miss;
    DriveMode hit;
    int conc_miss;
    int conc_hit;
    double paper_miss;
    double paper_hit;
  };
  const Row rows[] = {
      {"dns-based/ns-name", "ns_name", guard::Scheme::NsName,
       DriveMode::NsNameMiss, DriveMode::NsNameHit, 256, 256, 84200, 110100},
      {"dns-based/fabricated", "fabricated", guard::Scheme::FabricatedNsIp,
       DriveMode::FabricatedMiss, DriveMode::FabricatedHit, 256, 256, 60100,
       109700},
      {"tcp-based", "tcp", guard::Scheme::TcpRedirect,
       DriveMode::TcpWithRedirect, DriveMode::TcpWithRedirect, 50, 50, 22700,
       22700},
      {"modified-dns", "modified", guard::Scheme::ModifiedDns,
       DriveMode::ModifiedMiss, DriveMode::ModifiedHit, 256, 256, 84300,
       110300},
  };

  TablePrinter table(
      {"scheme", "miss(req/s)", "paper", "hit(req/s)", "paper"}, 22);
  table.print_header();
  JsonResultWriter json("table3_guard_throughput");
  ProfileCollector prof;
  double ns_name_miss_coverage = 0.0;
  double ns_name_hit_coverage = 0.0;
  for (const Row& row : rows) {
    // Counters snapshot for the first (ns-name miss) run only: one
    // representative registry dump keeps the JSON bounded.
    bool first = &row == &rows[0];
    RowResult miss = measure_throughput(
        row.scheme, row.miss, row.conc_miss, first ? &json : nullptr,
        "ns_name_miss.", &prof, std::string(row.prof_label) + "_miss");
    RowResult hit = measure_throughput(row.scheme, row.hit, row.conc_hit,
                                       nullptr, "", &prof,
                                       std::string(row.prof_label) + "_hit");
    if (first) {
      ns_name_miss_coverage = miss.coverage;
      ns_name_hit_coverage = hit.coverage;
    }
    table.print_row({row.label, TablePrinter::kilo(miss.rps),
                     TablePrinter::kilo(row.paper_miss),
                     TablePrinter::kilo(hit.rps),
                     TablePrinter::kilo(row.paper_hit)});
    json.add(std::string(row.label) + "_miss_rps", miss.rps);
    json.add(std::string(row.label) + "_hit_rps", hit.rps);
  }
  obs::prof::profiler.disable();

  // Attribution coverage: the per-stage shares must explain >= 90% of the
  // guard phase's measured wall time, or the profile is lying by
  // omission. (Dispatch slices charge all in-loop time, so in practice
  // this sits near 100%; a big gap means probes broke.) A real probe
  // regression depresses *every* profiled window, while a hypervisor
  // steal burst inflates one window's wall denominator — so the hard
  // failure requires both the miss and hit windows under the bar, and a
  // single low window only warns.
  json.add("ns_name_miss_profile_coverage", ns_name_miss_coverage);
  json.add("ns_name_hit_profile_coverage", ns_name_hit_coverage);
  bool ok = true;
  if (ns_name_miss_coverage < 0.90 && ns_name_hit_coverage < 0.90) {
    std::fprintf(stderr,
                 "FAIL: profile coverage below 90%% (miss %.1f%%, hit "
                 "%.1f%%)\n",
                 ns_name_miss_coverage * 100, ns_name_hit_coverage * 100);
    ok = false;
  } else if (ns_name_miss_coverage < 0.90 || ns_name_hit_coverage < 0.90) {
    std::fprintf(stderr,
                 "WARN: one profile window below 90%% coverage (miss "
                 "%.1f%%, hit %.1f%%) — host interference, not a probe "
                 "regression\n",
                 ns_name_miss_coverage * 100, ns_name_hit_coverage * 100);
  }

  // Zero-cost-when-disabled contract, runtime half: profiling on must
  // cost <= 2% of host wall time versus off. The verdict is
  // confidence-gated: fail when the measured ratio exceeds the bound by
  // more than two standard errors (so a busy host widens tolerance
  // instead of flaking), with a hard 5% cap no amount of measured noise
  // can excuse.
  OverheadGate gate = profiler_overhead_ratio();
  json.add("profiler_overhead_ratio", gate.ratio);
  json.add("profiler_overhead_se", gate.se);
  std::printf(
      "\nprofiler overhead ratio (enabled/disabled wall): %.4f "
      "(se %.4f)\n",
      gate.ratio, gate.se);
  if (gate.ratio > 1.02 + 2.0 * gate.se || gate.ratio > 1.05) {
    std::fprintf(stderr,
                 "FAIL: profiler overhead %.2f%% exceeds the 2%% gate "
                 "(se %.2f%%)\n",
                 (gate.ratio - 1.0) * 100, gate.se * 100);
    ok = false;
  } else if (gate.ratio > 1.02) {
    std::fprintf(stderr,
                 "WARN: profiler overhead %.2f%% above 2%% but within "
                 "measurement noise (se %.2f%%)\n",
                 (gate.ratio - 1.0) * 100, gate.se * 100);
  }

  prof.attach(json);
  json.write();
  std::printf(
      "\nShape checks: miss ranking modified ~ ns-name > fabricated > tcp;\n"
      "all UDP hit rows capped by the ~110K/s ANS simulator; TCP flat.\n");
  return ok ? 0 : 1;
}
