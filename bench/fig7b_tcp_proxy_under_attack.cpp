// Figure 7(b) — Throughput of the kernel-level TCP proxy under a varying
// UDP attack rate, with 50 concurrent legitimate TCP requests (§IV.E).
//
// Paper shape: linear decay from ~22K req/s at no attack to ~10K req/s at
// 250K attack req/s; the guard CPU is fully utilized throughout, and the
// UDP attack (answered with same-size truncation redirects) competes with
// the TCP legitimate traffic for guard CPU.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct Point {
  double tcp_throughput;
  double guard_cpu;
};

Point run_point(double attack_rate, JsonResultWriter* json = nullptr,
                ProfileCollector* prof = nullptr,
                const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::TcpRedirect);
  bed.add_driver(DriveMode::TcpDirect, /*concurrency=*/50,
                 net::Ipv4Address(10, 0, 1, 1), seconds(5));
  if (attack_rate > 0) bed.add_attacker(attack_rate);
  // Observed point: per-window counter deltas ride along in the JSON.
  if (json != nullptr) {
    bed.timeseries_window = quick(milliseconds(250), milliseconds(100));
  }
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(seconds(1), milliseconds(300)),
                                   quick(seconds(2), milliseconds(700)));
  if (prof != nullptr) prof->capture(prof_label, bed.last_wall_ns);
  Point p;
  p.tcp_throughput =
      static_cast<double>(bed.drivers[0]->driver_stats().completed) /
      window.seconds();
  p.guard_cpu = bed.guard->utilization(window);
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics());
    json->add_section("timeseries", bed.sim.timeseries().to_json(2));
  }
  return p;
}

}  // namespace

int main() {
  std::printf(
      "FIGURE 7(b): TCP proxy throughput vs UDP attack rate, 50 concurrent "
      "TCP requests (paper %sIV.E)\n"
      "Paper shape: ~22K req/s at no attack decaying linearly to ~10K at "
      "250K attack.\n\n",
      "\xc2\xa7");
  TablePrinter table({"attack(K/s)", "tcp_tput(K/s)", "guard_cpu(%)"}, 16);
  table.print_header();
  JsonResultWriter json("fig7b_tcp_proxy_under_attack");
  std::vector<double> sweep =
      quick_mode() ? std::vector<double>{0.0, 250e3}
                   : std::vector<double>{0.0, 50e3, 100e3, 150e3, 200e3,
                                         250e3};
  // Cost attribution at the peak attack rate: how the truncation-redirect
  // flood splits guard time between the UDP and TCP-proxy paths.
  ProfileCollector prof;
  for (double attack : sweep) {
    bool last = attack == sweep.back();
    Point p = run_point(attack, last ? &json : nullptr,
                        last ? &prof : nullptr, "peak_attack");
    table.print_row({TablePrinter::num(attack / 1000, 0),
                     TablePrinter::kilo(p.tcp_throughput),
                     TablePrinter::percent(p.guard_cpu)});
    std::string key = "attack_" + TablePrinter::num(attack / 1000, 0) + "k";
    json.add(key + ".tcp_rps", p.tcp_throughput);
    json.add(key + ".guard_cpu", p.guard_cpu);
  }
  obs::prof::profiler.disable();
  prof.attach(json);
  json.write();
  return 0;
}
