// Ablation — cookie-checker microbenchmarks (google-benchmark).
//
// §III.G: "The current cookie checker uses the MD5 hash algorithm and
// simple encoding/decoding... the cookie checker sustains large attack
// rates and cannot be easily overwhelmed." These benchmarks measure the
// real (host-machine) cost of every cookie operation on the guard's fast
// path, demonstrating that a single core sustains millions of checks/sec
// — far above the simulated guard's calibrated 1.2 us/cookie budget.
#include <benchmark/benchmark.h>

#include "crypto/cookie_hash.h"
#include "crypto/md5.h"
#include "guard/cookie_engine.h"

namespace {

using namespace dnsguard;

void BM_Md5_80Bytes(benchmark::State& state) {
  // The exact cookie input size: 76-byte key + 4-byte IP.
  Bytes input(80, 0xa5);
  for (auto _ : state) {
    auto digest = crypto::Md5::hash(BytesView(input));
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 80);
}
BENCHMARK(BM_Md5_80Bytes);

void BM_Md5_1KiB(benchmark::State& state) {
  Bytes input(1024, 0x5a);
  for (auto _ : state) {
    auto digest = crypto::Md5::hash(BytesView(input));
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Md5_1KiB);

void BM_CookieMint(benchmark::State& state) {
  crypto::RotatingKeys keys(42);
  std::uint32_t ip = 0x0a000001;
  for (auto _ : state) {
    auto c = keys.mint(ip++);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CookieMint);

void BM_CookieVerify(benchmark::State& state) {
  crypto::RotatingKeys keys(42);
  crypto::Cookie c = keys.mint(0x0a000001);
  for (auto _ : state) {
    bool ok = keys.verify(0x0a000001, c);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CookieVerify);

void BM_CookieVerify_AttackMiss(benchmark::State& state) {
  // The hot path under attack: verifying a WRONG cookie costs the same
  // one MD5 — there is no shortcut an attacker could starve.
  crypto::RotatingKeys keys(42);
  crypto::Cookie junk{};
  junk[0] = 0x7f;
  std::uint32_t ip = 0x0a000001;
  for (auto _ : state) {
    bool ok = keys.verify(ip++, junk);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CookieVerify_AttackMiss);

void BM_NsNameLabelEncode(benchmark::State& state) {
  guard::CookieEngine engine(7);
  std::uint32_t ip = 0x0a000001;
  for (auto _ : state) {
    auto label = engine.make_cookie_label(net::Ipv4Address(ip++), "com");
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_NsNameLabelEncode);

void BM_NsNameLabelParse(benchmark::State& state) {
  guard::CookieEngine engine(7);
  auto label = engine.make_cookie_label(net::Ipv4Address(10, 0, 0, 1), "com");
  for (auto _ : state) {
    auto parsed = guard::CookieEngine::parse_cookie_label(*label);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_NsNameLabelParse);

void BM_TxtCookieExtract(benchmark::State& state) {
  guard::CookieEngine engine(7);
  dns::Message m = dns::Message::query(
      1, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  guard::CookieEngine::attach_txt_cookie(
      m, engine.mint(net::Ipv4Address(10, 0, 0, 1)), 0);
  Bytes wire = m.encode();
  for (auto _ : state) {
    auto decoded = dns::Message::decode(BytesView(wire));
    auto cookie = guard::CookieEngine::extract_txt_cookie(*decoded);
    benchmark::DoNotOptimize(cookie);
  }
}
BENCHMARK(BM_TxtCookieExtract);

void BM_DnsMessageDecode(benchmark::State& state) {
  dns::Message m = dns::Message::query(
      1, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  Bytes wire = m.encode();
  for (auto _ : state) {
    auto decoded = dns::Message::decode(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DnsMessageDecode);

}  // namespace

BENCHMARK_MAIN();
