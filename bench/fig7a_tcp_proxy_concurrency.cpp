// Figure 7(a) — Throughput of the kernel-level TCP proxy under varying
// numbers of concurrent requests (§IV.E).
//
// Paper shape: ~22K req/s around 20 concurrent requests in a LAN,
// degrading to ~11K req/s at ~6000 concurrent connections because of the
// management overhead of a large connection table. Low concurrency is
// latency-bound (closed loop over a 0.4 ms RTT).
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

double run_point(int concurrency, JsonResultWriter* json = nullptr,
                 ProfileCollector* prof = nullptr,
                 const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::TcpRedirect);
  // Generous per-exchange timeout: at thousands of concurrent connections
  // the queueing delay exceeds the LAN default.
  bed.add_driver(DriveMode::TcpDirect, concurrency,
                 net::Ipv4Address(10, 0, 1, 1), seconds(5));
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(seconds(2), milliseconds(500)),
                                   quick(seconds(3), seconds(1)));
  if (prof != nullptr) prof->capture(prof_label, bed.last_wall_ns);
  if (json != nullptr) json->add_counters(bed.sim.metrics());
  return static_cast<double>(bed.drivers[0]->driver_stats().completed) /
         window.seconds();
}

}  // namespace

int main() {
  std::printf(
      "FIGURE 7(a): Kernel TCP proxy throughput vs concurrent requests "
      "(paper %sIV.E)\n"
      "Paper shape: ~22K req/s near 20 concurrent; ~11K req/s at 6000.\n\n",
      "\xc2\xa7");
  TablePrinter table({"concurrent", "throughput(K/s)"}, 18);
  table.print_header();
  JsonResultWriter json("fig7a_tcp_proxy_concurrency");
  std::vector<int> sweep =
      quick_mode() ? std::vector<int>{20, 1000, 6000}
                   : std::vector<int>{1, 2, 5, 10, 20, 50, 100, 200, 500,
                                      1000, 2000, 4000, 6000};
  // Cost attribution at peak concurrency: the connection-table management
  // overhead the paper blames for the 6000-connection droop shows up as
  // guard.tcp_proxy / guard.nat_rewrite shares.
  ProfileCollector prof;
  for (int conc : sweep) {
    bool last = conc == sweep.back();
    double tput = run_point(conc, last ? &json : nullptr,
                            last ? &prof : nullptr, "peak_concurrency");
    table.print_row({TablePrinter::num(conc, 0), TablePrinter::kilo(tput)});
    json.add("conc_" + std::to_string(conc) + "_rps", tput);
  }
  obs::prof::profiler.disable();
  prof.attach(json);
  json.write();
  return 0;
}
