// Scheduler microbenchmark: the pool-backed 4-ary InplaceFunction heap
// (sim/event_queue.h) against the seed implementation (binary
// std::priority_queue over shared_ptr<std::function>, two heap allocations
// per event). The workload mimics the simulator's steady state: a standing
// window of pending events, each pop scheduling a successor at a pseudo-
// random future instant, with packet-sized (~72 byte) captures like the
// deliver_later hot path.
//
// Acceptance target for PR 1: new_events_per_sec >= 2x old_events_per_sec.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace dnsguard::bench {
namespace {

/// Byte-for-byte copy of the seed EventQueue (PR 0) to measure against.
class LegacyEventQueue {
 public:
  using Fn = std::function<void()>;

  void schedule(SimTime at, Fn fn) {
    heap_.push(Entry{at, next_seq_++, std::make_shared<Fn>(std::move(fn))});
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  Fn pop(SimTime& at_out) {
    Entry e = heap_.top();
    heap_.pop();
    at_out = e.at;
    return std::move(*e.fn);
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<Fn> fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Stand-in for the captured [Node*, net::Packet] of a delivery event.
struct FakePacketCapture {
  void* node;
  std::uint8_t header[28];
  std::uint64_t payload_words[4];
};

// Standing pending-event count. Probing Simulator::pending_events() across
// the paper workloads (fig5-7 style testbeds: closed-loop LRS drivers,
// guard, 250K-1M req/s spoofed floods) shows 320-2,800 events pending at
// steady state, so 1024 sits in the middle of the realistic range.
constexpr int kWindow = 1024;
// Pops measured per run; quick mode (CI smoke) runs 10x fewer.
inline std::uint64_t event_count() {
  return quick<std::uint64_t>(4'000'000, 400'000);
}

template <typename Queue>
double run_events_per_sec(Queue& q) {
  const std::uint64_t kEvents = event_count();
  Rng rng(0x5eedULL);
  std::uint64_t sink = 0;
  SimTime now{};
  // Pre-fill the standing window. One RNG draw per event doubles as the
  // payload word and the delay, keeping the harness overhead (identical on
  // both sides) out of the measured difference as much as possible.
  for (int i = 0; i < kWindow; ++i) {
    const std::uint64_t r = rng.next();
    FakePacketCapture cap{&sink, {}, {r, 0, 0, 0}};
    q.schedule(SimTime{static_cast<std::int64_t>(r % 1000)},
               [cap, &sink] { sink += cap.payload_words[0]; });
  }
  auto start = wall_now();
  for (std::uint64_t n = 0; n < kEvents; ++n) {
    // The simulator drains via run_next (in-place invocation) where the
    // queue provides it; the legacy queue only has pop.
    if constexpr (requires { q.run_next(now); }) {
      q.run_next(now);
    } else {
      auto fn = q.pop(now);
      fn();
    }
    const std::uint64_t r = rng.next();
    FakePacketCapture cap{&sink, {}, {r, 0, 0, 0}};
    q.schedule(now + SimDuration{static_cast<std::int64_t>(r % 1000)},
               [cap, &sink] { sink += cap.payload_words[0]; });
  }
  auto elapsed = wall_seconds_since(start);
  SimTime drain;
  while (!q.empty()) q.pop(drain);
  if (sink == 0xdead) std::printf("impossible\n");  // keep `sink` observed
  return static_cast<double>(kEvents) / elapsed;
}

}  // namespace
}  // namespace dnsguard::bench

int main() {
  using namespace dnsguard;
  using namespace dnsguard::bench;

  std::printf("Event-queue microbench: %llu schedule+pop cycles, window %d, "
              "packet-sized captures\n\n",
              static_cast<unsigned long long>(event_count()), kWindow);

  // Interleave runs so CPU frequency ramp and scheduler noise hit both
  // equally; keep the best of five per implementation (best-of, not mean,
  // because interference only ever subtracts throughput).
  double old_best = 0, new_best = 0;
  const int rounds = quick(5, 2);
  for (int round = 0; round < rounds; ++round) {
    {
      LegacyEventQueue legacy;
      old_best = std::max(old_best, run_events_per_sec(legacy));
    }
    {
      sim::EventQueue queue;
      new_best = std::max(new_best, run_events_per_sec(queue));
    }
  }

  double speedup = new_best / old_best;
  std::printf("legacy (shared_ptr<std::function> binary heap): %10.0f ev/s\n",
              old_best);
  std::printf("new    (InplaceFunction 4-ary pool heap):       %10.0f ev/s\n",
              new_best);
  std::printf("speedup: %.2fx %s\n", speedup,
              speedup >= 2.0 ? "(meets >=2x target)" : "(BELOW 2x target)");

  // No "profile" section here by design: this microbenchmark times the
  // event queue outside any simulator pipeline, so there are no stages to
  // attribute — events_per_sec is already the single-stage cost model.
  JsonResultWriter json("event_queue");
  json.add("old_events_per_sec", old_best);
  json.add("new_events_per_sec", new_best);
  json.add("speedup", speedup);
  json.write();
  // Quick mode (CI smoke on shared runners) reports but does not enforce
  // the wall-clock gate; noisy neighbours would make it flaky.
  if (quick_mode()) return 0;
  return speedup >= 2.0 ? 0 : 1;
}
