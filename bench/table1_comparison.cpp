// Table I — Comparison among spoof detection schemes.
//
// The qualitative rows (latency in RTTs, cookie storage, cookie range,
// amplification, deployment) are protocol facts encoded in
// guard/comparison.h; this bench prints them AND cross-checks the
// quantitative claims against the simulator:
//   * best/worst-case latency in RTTs (measured over a known-RTT link),
//   * traffic amplification of the guard's cookie responses
//     (DNS-based < 50% / +24 bytes; TCP-based and modified-DNS: none).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "guard/comparison.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

double measured_rtts(guard::Scheme scheme, DriveMode mode) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(scheme);
  auto* driver = bed.add_driver(mode, 1, net::Ipv4Address(10, 0, 1, 1),
                                milliseconds(500));
  // A 10 ms RTT makes processing time negligible in the RTT count.
  bed.sim.set_latency(driver, bed.guard.get(), microseconds(5000));
  bed.measure(milliseconds(200), seconds(2));
  return driver->latencies().mean() / 10.0;
}

/// Amplification of the guard's response to the first (unverified)
/// request: response wire bytes minus request wire bytes.
struct Amplification {
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
};

/// One-shot probe: fires a single crafted query and records the sizes of
/// what it sent and what came back.
class ProbeNode : public sim::Node {
 public:
  ProbeNode(sim::Simulator& s, net::Ipv4Address addr)
      : sim::Node(s, "probe"), addr_(addr) {}

  void fire(net::SocketAddr target, dns::Message query) {
    net::Packet p = net::Packet::make_udp({addr_, 32000}, target,
                                          query.encode());
    sent_bytes = p.wire_size();
    send(std::move(p));
  }

  std::size_t sent_bytes = 0;
  std::size_t received_bytes = 0;

 protected:
  SimDuration process(const net::Packet& packet) override {
    received_bytes = packet.wire_size();
    return SimDuration{};
  }

 private:
  net::Ipv4Address addr_;
};

Amplification measure_amplification(guard::Scheme scheme) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(scheme);
  ProbeNode probe(bed.sim, net::Ipv4Address(10, 0, 1, 9));
  bed.sim.add_host_route(net::Ipv4Address(10, 0, 1, 9), &probe);

  // The first, unverified request each scheme sees: a plain query (a
  // zero-cookie request for modified-DNS, which replies with a cookie of
  // identical size).
  dns::Message q = dns::Message::query(
      1, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  if (scheme == guard::Scheme::ModifiedDns) {
    guard::CookieEngine::attach_txt_cookie(q, crypto::Cookie{}, 0);
  }
  probe.fire({kAnsIp, net::kDnsPort}, std::move(q));
  bed.sim.run_for(milliseconds(10));
  return Amplification{probe.sent_bytes, probe.received_bytes};
}

}  // namespace

int main() {
  std::printf("TABLE I: Comparison among spoof detection schemes (paper "
              "%sIII.F)\n\n", "\xc2\xa7");

  auto profiles = guard::scheme_profiles(std::log2(250.0));
  TablePrinter table({"property", "ns-name", "fabricated", "tcp-based",
                      "modified-dns"},
                     20);
  table.print_header();

  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& p : profiles) cells.push_back(getter(p));
    table.print_row(cells);
  };
  row("worst latency (RTT)", [](const guard::SchemeProfile& p) {
    return TablePrinter::num(p.worst_latency_rtt, 0);
  });
  row("best latency (RTT)", [](const guard::SchemeProfile& p) {
    return TablePrinter::num(p.best_latency_rtt, 0);
  });
  row("cookie storage", [](const guard::SchemeProfile& p) {
    return std::string(p.cookie_storage);
  });
  row("cookie range (2^n)", [](const guard::SchemeProfile& p) {
    return TablePrinter::num(p.cookie_range_log2, 0);
  });
  row("amplification (B)", [](const guard::SchemeProfile& p) {
    return TablePrinter::num(p.amplification_bytes, 0);
  });
  row("deployment", [](const guard::SchemeProfile& p) {
    return std::string(p.deployment);
  });

  std::printf("\nCross-checks against the simulator:\n\n");
  TablePrinter check({"scheme", "miss RTTs", "hit RTTs", "req(B)", "resp(B)",
                      "amp(B)"},
                     14);
  check.print_header();
  struct Probe {
    const char* label;
    guard::Scheme scheme;
    DriveMode miss;
    DriveMode hit;
  };
  const Probe probes[] = {
      {"ns-name", guard::Scheme::NsName, DriveMode::NsNameMiss,
       DriveMode::NsNameHit},
      {"fabricated", guard::Scheme::FabricatedNsIp, DriveMode::FabricatedMiss,
       DriveMode::FabricatedHit},
      {"tcp-based", guard::Scheme::TcpRedirect, DriveMode::TcpWithRedirect,
       DriveMode::TcpWithRedirect},
      {"modified-dns", guard::Scheme::ModifiedDns, DriveMode::ModifiedMiss,
       DriveMode::ModifiedHit},
  };
  for (const Probe& p : probes) {
    double miss = measured_rtts(p.scheme, p.miss);
    double hit = measured_rtts(p.scheme, p.hit);
    Amplification amp = measure_amplification(p.scheme);
    long extra = static_cast<long>(amp.response_bytes) -
                 static_cast<long>(amp.request_bytes);
    check.print_row({p.label, TablePrinter::num(miss, 1),
                     TablePrinter::num(hit, 1),
                     TablePrinter::num(static_cast<double>(amp.request_bytes), 0),
                     TablePrinter::num(static_cast<double>(amp.response_bytes), 0),
                     TablePrinter::num(static_cast<double>(extra), 0)});
  }
  std::printf(
      "\nPaper bounds: DNS-based amplification < 50%% (+24 B); TCP-based "
      "and modified-DNS: none (same-size responses).\n");
  return 0;
}
