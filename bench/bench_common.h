// Shared testbed assembly for the paper-reproduction benchmarks.
//
// Mirrors the §IV.A testbed: a protected ANS (BIND-like or the fast "ANS
// simulator"), the remote DNS guard in router mode, LRS-simulator load
// drivers and attack generators, wired through the discrete-event network
// with the testbed's 0.4 ms LAN RTT.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "server/authoritative_node.h"
#include "server/zone.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"
#include "workload/metrics.h"

namespace dnsguard::bench {

/// CI smoke mode: when $DNSGUARD_BENCH_QUICK is set (non-empty), benches
/// shrink warmup/measurement windows and sweep fewer points so the whole
/// suite runs in seconds. Virtual-time results stay deterministic, so the
/// quick numbers are comparable across runs and gate regressions in CI.
inline bool quick_mode() {
  const char* env = std::getenv("DNSGUARD_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// Picks the full-fidelity value or the smoke-test value.
template <typename T>
T quick(T full_value, T quick_value) {
  return quick_mode() ? quick_value : full_value;
}

// --- wall-clock measurement ------------------------------------------------
// Benches measure *host* throughput, so they legitimately read real time —
// but only through these helpers. Everything else in the tree runs on the
// sim clock; bench_common.h and src/common/time.cpp are the only files the
// sim-time-purity lint rule exempts (tools/lint/dnsguard_lint.py), which
// keeps stray wall-clock reads out of simulation code.

using WallClock = std::chrono::steady_clock;

/// Starts a wall-clock measurement.
inline WallClock::time_point wall_now() { return WallClock::now(); }

/// Seconds elapsed since `t0`.
inline double wall_seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

/// Seconds of CPU time consumed by the calling thread. Unlike the wall
/// helpers this excludes scheduler preemption and hypervisor steal, so
/// A/B comparisons of pure CPU cost (e.g. the profiler overhead gate)
/// stay measurable on noisy shared hosts where wall-clock deltas drown
/// in multi-percent interference.
inline double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return wall_seconds_since(WallClock::time_point{});
}

/// Mean wall nanoseconds per operation since `t0`. An empty window (no
/// operations completed, e.g. a quick-mode run whose warmup consumed the
/// whole load) reports 0 rather than dividing by zero — inf/nan would
/// poison the JSON output and every downstream baseline comparison.
inline double wall_ns_per_op(WallClock::time_point t0, std::uint64_t ops) {
  if (ops == 0) return 0.0;
  return wall_seconds_since(t0) * 1e9 / static_cast<double>(ops);
}

/// Machine-readable benchmark results: collects scalar metrics and writes
/// them as `BENCH_<name>.json` in the working directory (override the
/// directory with $DNSGUARD_BENCH_DIR). One file per bench per run gives
/// CI a throughput trajectory across PRs without scraping stdout.
class JsonResultWriter {
 public:
  explicit JsonResultWriter(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metrics_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
  }

  /// Snapshots a metrics registry into the "counters" section. Call after
  /// the measurement window; last snapshot wins. A `prefix` (e.g. a sweep
  /// point like "rate_50k.") namespaces repeated snapshots instead.
  void add_counters(const obs::MetricsRegistry& registry,
                    const std::string& prefix = "") {
    for (const auto& [name, value] : registry.snapshot()) {
      char buf[64];
      if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
      } else {
        std::snprintf(buf, sizeof(buf), "%.6g", value);
      }
      counters_.emplace_back(prefix + name, buf);
    }
  }

  /// Attaches a pre-rendered JSON value (object/array) as a top-level
  /// section of the output file — e.g. a TimeSeriesSampler::to_json()
  /// dump under "timeseries". The value is emitted verbatim.
  void add_section(const std::string& key, std::string raw_json) {
    sections_.emplace_back(key, std::move(raw_json));
  }

  /// Writes the file; returns false (and stays silent) on IO failure so a
  /// read-only CWD never fails a benchmark run.
  bool write() const {
    std::string dir;
    if (const char* env = std::getenv("DNSGUARD_BENCH_DIR")) dir = env;
    std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
                 name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %s%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second.c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"counters\": {\n");
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %s%s\n", counters_[i].first.c_str(),
                   counters_[i].second.c_str(),
                   i + 1 < counters_.size() ? "," : "");
    }
    std::fprintf(f, "  }");
    for (const auto& [key, raw] : sections_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), raw.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::pair<std::string, std::string>> counters_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Collects per-label cost-attribution reports for the "profile" JSON
/// section. A bench captures one report per measured configuration (e.g.
/// table3 captures "ns_name_hit" and "ns_name_miss") and attaches the
/// whole map via attach(); tools/flamegraph.py and tools/check_bench.py
/// consume the section.
class ProfileCollector {
 public:
  /// Snapshots the profiler under `label`. `measured_wall_ns` is the wall
  /// time of the measurement window the snapshot covers (gives each stage
  /// a "share" field and the report a "root_share" coverage figure).
  void capture(const std::string& label, double measured_wall_ns) {
    if (!obs::prof::profiler.enabled()) return;
    entries_.emplace_back(
        label, obs::prof::profiler.report_json(measured_wall_ns, 4));
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Renders the {"label": <report>, ...} object.
  [[nodiscard]] std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += i == 0 ? "\n    \"" : ",\n    \"";
      out += entries_[i].first;
      out += "\": ";
      out += entries_[i].second;
    }
    out += "\n  }";
    return out;
  }

  /// Adds the "profile" section to `writer` (no-op when nothing was
  /// captured, so profiling stays strictly opt-in per bench).
  void attach(JsonResultWriter& writer) const {
    if (!empty()) writer.add_section("profile", to_json());
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline constexpr net::Ipv4Address kAnsIp{10, 1, 1, 254};
inline constexpr net::Ipv4Address kGuardIp{10, 1, 1, 253};
inline constexpr net::Ipv4Address kSubnetBase{10, 1, 1, 0};
inline constexpr net::Ipv4Address kComServerIp{10, 0, 0, 2};

enum class AnsKind { Bind, Simulator };

struct Testbed {
  sim::Simulator sim;
  std::unique_ptr<server::AuthoritativeServerNode> bind_ans;
  std::unique_ptr<server::AnsSimulatorNode> sim_ans;
  std::unique_ptr<guard::RemoteGuardNode> guard;
  std::vector<std::unique_ptr<workload::LrsSimulatorNode>> drivers;
  std::vector<std::unique_ptr<attack::SpoofedFloodNode>> attackers;

  sim::Node* ans_node() {
    return bind_ans ? static_cast<sim::Node*>(bind_ans.get())
                    : static_cast<sim::Node*>(sim_ans.get());
  }

  /// Builds the ANS. The BIND flavour serves a root-style delegation zone
  /// (answers are referrals with glue, like a root/TLD server) and a
  /// leaf host set; the simulator flavour answers everything at 110K/s.
  void make_ans(AnsKind kind,
                std::optional<std::uint32_t> ttl_override = std::nullopt) {
    if (kind == AnsKind::Bind) {
      server::AuthoritativeServerNode::Config ac;
      ac.address = kAnsIp;
      ac.ttl_override = ttl_override;
      bind_ans = std::make_unique<server::AuthoritativeServerNode>(
          sim, "bind-ans", ac);
      // Root-style zone: delegates com with glue (the NS-name dance's
      // restored question "com." earns a referral + glue), and also
      // hosts direct A records so PlainUdp / fabricated dances resolve.
      server::Zone root(dns::DomainName{});
      root.add_soa();
      root.add_ns(".", "a.root-servers.net.");
      root.add_a("a.root-servers.net.", kAnsIp);
      root.add_ns("com.", "a.gtld-servers.net.");
      root.add_a("a.gtld-servers.net.", kComServerIp);
      root.add_a("www.foo.com.", net::Ipv4Address(192, 0, 2, 80));
      bind_ans->add_zone(std::move(root));
    } else {
      sim_ans = std::make_unique<server::AnsSimulatorNode>(
          sim, "ans-sim",
          server::AnsSimulatorNode::Config{.address = kAnsIp});
    }
  }

  /// Installs the guard in front of the ANS. Limiters default to
  /// benchmark settings (never throttling the measured legitimate load);
  /// `tweak` can override anything.
  void make_guard(
      guard::Scheme scheme, double activation_threshold = 0.0,
      std::function<void(guard::RemoteGuardNode::Config&)> tweak = {},
      int subnet_prefix_len = 24) {
    guard::RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = kSubnetBase;
    gc.r_y = 250;
    gc.scheme = scheme;
    gc.activation_threshold_rps = activation_threshold;
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    // The load drivers pose as a single very fast client; the per-client
    // connection throttle is exercised by its own ablation bench instead.
    gc.proxy_conn_rate = 1e7;
    gc.proxy_conn_burst = 1e6;
    if (tweak) tweak(gc);
    guard = std::make_unique<guard::RemoteGuardNode>(sim, "guard", gc,
                                                     ans_node());
    guard->install(subnet_prefix_len);
  }

  /// Without a guard: route the ANS address directly (protection off and
  /// no firewall box in the path at all).
  void route_ans_directly() { sim.add_host_route(kAnsIp, ans_node()); }

  workload::LrsSimulatorNode* add_driver(
      workload::DriveMode mode, int concurrency,
      net::Ipv4Address address = net::Ipv4Address(10, 0, 1, 1),
      SimDuration timeout = milliseconds(10), SimDuration think = {},
      SimDuration per_packet_cost = {}) {
    workload::LrsSimulatorNode::Config dc;
    dc.address = address;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = concurrency;
    dc.timeout = timeout;
    dc.think_time = think;
    dc.per_packet_cost = per_packet_cost;
    auto node = std::make_unique<workload::LrsSimulatorNode>(
        sim, "driver-" + address.to_string(), dc);
    sim.add_host_route(address, node.get());
    drivers.push_back(std::move(node));
    return drivers.back().get();
  }

  attack::SpoofedFloodNode* add_attacker(
      double rate, net::Ipv4Address address = net::Ipv4Address(10, 9, 9, 9),
      attack::SpoofedFloodNode::SpoofConfig spoof = {}) {
    auto node = std::make_unique<attack::SpoofedFloodNode>(
        sim, "attacker",
        attack::FloodNodeBase::Config{.own_address = address,
                                      .target = {kAnsIp, net::kDnsPort},
                                      .rate = rate,
                                      .qname_base = "www.foo.com."},
        spoof);
    attackers.push_back(std::move(node));
    return attackers.back().get();
  }

  Testbed() { sim.set_default_latency(microseconds(200)); }  // 0.4 ms RTT

  /// Observability knobs for the measurement window. Journeys and the
  /// sampler run on the virtual clock and charge no simulated CPU, so
  /// enabling them cannot move throughput/latency results.
  bool enable_journeys = false;
  /// Nonzero: sample registry counters every this often (sim time) during
  /// the measurement window; dump via sim.timeseries().to_json().
  SimDuration timeseries_window{};
  /// Called right after the sampler starts — the place to bind an
  /// obs::AttackMonitor (its series indices resolve against the running
  /// sampler).
  std::function<void()> on_sampling_started;
  /// Nonzero: attackers fire this long *after* the measurement window
  /// opens instead of during warmup — gives anomaly detection a clean
  /// baseline followed by a mid-window onset.
  SimDuration attacker_start_delay{};
  /// Enable the wall-clock cost-attribution profiler for the measurement
  /// window (reset after warmup, so warmup samples never pollute the
  /// report). Unlike journeys/timeseries this reads *host* time: virtual
  /// results stay identical, but host throughput pays the probes' ~1-2%.
  bool enable_profiling = false;
  /// Event-sampling duty cycle for profiled windows: probes arm for the
  /// first `profile_sample_block` events of every `profile_sample_stride`
  /// and the report scales back up. The defaults (16/6361, a prime stride
  /// against event-pattern aliasing, ~0.25% duty) keep enabled-mode wall
  /// overhead inside the 2% gate; the block is long enough that the
  /// cold-entry cost of re-arming probes (cell matrix and probe code fall
  /// out of cache between blocks) amortizes across the block instead of
  /// inflating every sampled event. Set both to 1 for exhaustive capture.
  std::uint32_t profile_sample_stride = 6361;
  std::uint32_t profile_sample_block = 16;
  /// Wall nanoseconds spent inside the last measure() window — the
  /// denominator for ProfileCollector::capture() shares.
  double last_wall_ns = 0.0;

  /// Warm up, reset stats, measure for `window`. Returns the window.
  SimDuration measure(SimDuration warmup, SimDuration window) {
    if (enable_journeys) sim.journeys().enable();
    for (auto& d : drivers) d->start();
    for (auto& a : attackers) {
      if (attacker_start_delay.ns > 0) {
        attack::SpoofedFloodNode* ap = a.get();
        sim.schedule_in(warmup + attacker_start_delay,
                        [ap] { ap->start(); });
      } else {
        a->start();
      }
    }
    sim.run_for(warmup);
    // Zero every cell attached to the simulator's registry (guard, TCP
    // proxy, limiters, drop reasons, ...): the measurement window starts
    // from a clean metric slate.
    sim.metrics().reset_values();
    for (auto& d : drivers) d->reset_driver_stats();
    if (bind_ans) {
      bind_ans->reset_ans_stats();
      bind_ans->reset_stats();
    }
    if (sim_ans) {
      sim_ans->reset_ans_stats();
      sim_ans->reset_stats();
    }
    if (guard) {
      guard->reset_guard_stats();
      guard->reset_stats();
    }
    // Start sampling only now: windows then hold deltas of the measured
    // load, not warmup remnants.
    if (timeseries_window.ns > 0) {
      sim.start_timeseries(timeseries_window);
      if (on_sampling_started) on_sampling_started();
    }
    if (enable_profiling) {
      if (!obs::prof::profiler.enabled()) obs::prof::profiler.enable();
      obs::prof::profiler.set_sampling(profile_sample_stride,
                                       profile_sample_block);
      obs::prof::profiler.reset();
    }
    const WallClock::time_point wall_t0 = wall_now();
    sim.run_for(window);
    last_wall_ns = wall_seconds_since(wall_t0) * 1e9;
    if (timeseries_window.ns > 0) sim.stop_timeseries();
    for (auto& a : attackers) a->stop();
    for (auto& d : drivers) d->stop();
    return window;
  }
};

}  // namespace dnsguard::bench
