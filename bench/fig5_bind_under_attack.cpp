// Figure 5 — Throughput and CPU utilization of an ANS running BIND 9 with
// the DNS guard turned on and off (§IV.C).
//
// Paper setup: BIND-like ANS (max ~14K UDP req/s; response TTL forced to 0
// so nothing caches), two legitimate LRSs at ~1K req/s each — the first
// served with UDP (NS-name) cookies, the second redirected to TCP — and a
// spoofed-UDP attacker swept 0..16K req/s. Legitimate requesters use
// BIND's 2 s retry timer, which is why modest loss collapses their
// throughput. The guard's spoof detection activates only above 14K req/s
// total input (i.e. ~12K attack), matching the paper's threshold.
//
// Paper shape: without the guard the ANS saturates past ~12K attack and
// legitimate throughput collapses toward zero while ANS CPU pegs at 100%;
// with the guard the legitimate throughput stays ~2K (slightly less
// because the TCP-redirected LRS tops out near 0.5K) and ANS CPU drops
// the moment detection kicks in.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

constexpr net::Ipv4Address kLrs1Ip{10, 0, 1, 1};
constexpr net::Ipv4Address kLrs2Ip{10, 0, 1, 2};

struct Point {
  double legit_throughput;
  double ans_cpu;
};

Point run_point(double attack_rate, bool protection,
                JsonResultWriter* json = nullptr,
                const std::string& counter_prefix = "",
                ProfileCollector* prof = nullptr,
                const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Bind, /*ttl_override=*/0);

  // Paced legitimate requesters: 20 workers, ~18 ms think time ≈ 1K req/s
  // healthy; 2 s timeout models BIND's retry timer.
  if (protection) {
    bed.make_guard(guard::Scheme::NsName,
                   /*activation_threshold=*/14000.0,
                   [](guard::RemoteGuardNode::Config& gc) {
                     gc.per_source_scheme[kLrs2Ip] =
                         guard::Scheme::TcpRedirect;
                   });
    bed.add_driver(DriveMode::NsNameHit, 20, kLrs1Ip, seconds(2),
                   milliseconds(18));
    // The TCP-redirected LRS: BIND's TCP path is slow (paper: ~0.5K req/s
    // max); model it with a 250 us per-packet cost at the driver.
    bed.add_driver(DriveMode::TcpWithRedirect, 20, kLrs2Ip, seconds(2),
                   milliseconds(18), microseconds(250));
  } else {
    bed.route_ans_directly();
    bed.add_driver(DriveMode::PlainUdp, 20, kLrs1Ip, seconds(2),
                   milliseconds(18));
    bed.add_driver(DriveMode::PlainUdp, 20, kLrs2Ip, seconds(2),
                   milliseconds(18));
  }

  if (attack_rate > 0) bed.add_attacker(attack_rate);

  // Observed point: 1 s (sim) counter windows ride along in the JSON.
  if (json != nullptr) {
    bed.timeseries_window = quick(seconds(1), milliseconds(500));
  }
  // Long window: the 2 s timeout dynamics need time to show.
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(seconds(3), seconds(1)),
                                   quick(seconds(8), seconds(2)));
  if (prof != nullptr) prof->capture(prof_label, bed.last_wall_ns);
  double completed = 0;
  for (auto& d : bed.drivers) {
    completed += static_cast<double>(d->driver_stats().completed);
  }
  Point p;
  p.legit_throughput = completed / window.seconds();
  p.ans_cpu = bed.bind_ans->utilization(window);
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics(), counter_prefix);
    json->add_section("timeseries", bed.sim.timeseries().to_json(2));
  }
  return p;
}

}  // namespace

int main() {
  std::printf(
      "FIGURE 5: BIND-9 ANS throughput of legitimate requests and ANS CPU "
      "vs attack rate, guard on/off (paper %sIV.C)\n"
      "BIND capacity ~14K req/s UDP; legit load 2x ~1K req/s (one UDP, one "
      "TCP-redirected when guarded); threshold 14K.\n\n",
      "\xc2\xa7");

  TablePrinter table({"attack(K/s)", "legit_on(/s)", "legit_off(/s)",
                      "ans_cpu_on(%)", "ans_cpu_off(%)"},
                     16);
  table.print_header();
  JsonResultWriter json("fig5_bind_under_attack");
  std::vector<double> sweep =
      quick_mode() ? std::vector<double>{0.0, 8e3, 16e3}
                   : std::vector<double>{0.0, 2e3, 4e3, 6e3, 8e3, 10e3,
                                         12e3, 14e3, 16e3};
  // Cost attribution for the highest-attack guarded point (where the
  // guard's classify/verify stages carry the flood).
  ProfileCollector prof;
  for (double attack : sweep) {
    // Counters only for the last (highest-attack) guarded point: it is
    // the one that exercises the drop taxonomy.
    bool last = attack == sweep.back();
    Point on = run_point(attack, /*protection=*/true, last ? &json : nullptr,
                         "", last ? &prof : nullptr, "guarded_peak");
    Point off = run_point(attack, /*protection=*/false);
    table.print_row({TablePrinter::num(attack / 1000, 0),
                     TablePrinter::num(on.legit_throughput, 0),
                     TablePrinter::num(off.legit_throughput, 0),
                     TablePrinter::percent(on.ans_cpu),
                     TablePrinter::percent(off.ans_cpu)});
    std::string key = "attack_" + TablePrinter::num(attack / 1000, 0) + "k";
    json.add(key + ".legit_on_per_s", on.legit_throughput);
    json.add(key + ".legit_off_per_s", off.legit_throughput);
    json.add(key + ".ans_cpu_on", on.ans_cpu);
    json.add(key + ".ans_cpu_off", off.ans_cpu);
  }
  obs::prof::profiler.disable();
  prof.attach(json);
  json.write();
  return 0;
}
