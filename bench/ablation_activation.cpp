// Ablation — the spoof-detection activation threshold (§IV.C).
//
// "Because spoof detection requires additional computation overhead, it
// is advisable to enable the DNS guard's spoof detection mechanism only
// when the input request rate exceeds a threshold."
//
// This bench quantifies that design choice: with threshold-gating, a
// guarded server in peacetime pays neither the extra round trip of the
// cookie dance (latency column) nor the per-request cookie CPU (guard
// CPU column); once a flood pushes the input rate past the threshold,
// detection engages automatically and the ANS is shielded. An always-on
// guard protects equally well but taxes peacetime latency.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct Sample {
  double latency_ms;
  double guard_cpu;
  std::uint64_t ans_queries;
  std::uint64_t attack_through;
};

Sample run(double threshold, double attack_rate) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::NsName, threshold);
  // A modest paced requester (latency is the observable, so keep the
  // system far from saturation).
  bed.add_driver(DriveMode::NsNameMiss, 4, net::Ipv4Address(10, 0, 1, 1),
                 milliseconds(100), milliseconds(2));
  if (attack_rate > 0) bed.add_attacker(attack_rate);
  SimDuration window = bed.measure(milliseconds(500), seconds(2));

  Sample s;
  s.latency_ms = bed.drivers[0]->latencies().mean();
  s.guard_cpu = bed.guard->utilization(window);
  s.ans_queries = bed.sim_ans->ans_stats().udp_queries;
  // Attack requests that made it to the ANS = ANS queries beyond what the
  // legitimate driver accounts for.
  std::uint64_t legit = bed.guard->guard_stats().forwarded_inactive +
                        bed.guard->guard_stats().forwarded_to_ans;
  (void)legit;
  s.attack_through =
      s.ans_queries > bed.drivers[0]->driver_stats().completed
          ? s.ans_queries - bed.drivers[0]->driver_stats().completed
          : 0;
  return s;
}

}  // namespace

int main() {
  std::printf(
      "ABLATION: spoof-detection activation threshold (paper %sIV.C)\n"
      "Threshold 0 = always-on detection; 50K = detection engages only "
      "under flood.\nLegit: 4 workers, ~1.6K req/s paced. NS-name scheme "
      "(miss path: every request needs the 2-RTT dance when active).\n\n",
      "\xc2\xa7");
  TablePrinter table({"config", "attack(K/s)", "latency(ms)", "guard_cpu",
                      "attack->ANS"},
                     16);
  table.print_header();
  struct Case {
    const char* label;
    double threshold;
    double attack;
  };
  const Case cases[] = {
      {"always-on", 0.0, 0.0},
      {"threshold-50K", 50e3, 0.0},
      {"always-on", 0.0, 100e3},
      {"threshold-50K", 50e3, 100e3},
  };
  for (const Case& c : cases) {
    Sample s = run(c.threshold, c.attack);
    table.print_row({c.label, TablePrinter::num(c.attack / 1000, 0),
                     TablePrinter::num(s.latency_ms, 2),
                     TablePrinter::percent(s.guard_cpu),
                     std::to_string(s.attack_through)});
  }
  std::printf(
      "\nShape check: in peacetime the thresholded guard serves at 1 RTT\n"
      "(~0.4 ms, pass-through) vs ~2 RTT always-on; under a 100K flood\n"
      "both configurations block the attack from the ANS.\n");
  return 0;
}
