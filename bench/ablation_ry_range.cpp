// Ablation — cookie range vs false-negative ratio (§III.G).
//
// The fabricated NS+IP variant encodes the second cookie in a destination
// address within the guard's subnet, so its guessing space is only R_y.
// §III.G: "an attacker can distribute his attack requests randomly in the
// cookie range... then 1/R_y of the attack requests will have a correct
// cookie value". This bench sweeps R_y and measures the attacker's
// penetration rate in the simulator, then contrasts it with the NS-name
// label (2^32) and TXT cookie (2^128) ranges where spraying achieves
// nothing at any realistic rate.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::TablePrinter;

namespace {

struct Result {
  std::uint64_t attack_sent;
  std::uint64_t penetrated;
};

Result run_subnet_spray(std::uint32_t r_y) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  // The intercepted subnet must cover [base, base + R_y + 1] (a /24 for
  // R_y<=250, wider for larger ranges — Table I caps this encoding at
  // 2^24). Widen until the aligned block containing the base also
  // contains the top cookie address.
  int prefix_len = 24;
  std::uint32_t base = kSubnetBase.value();
  auto block_of = [&](std::uint32_t addr) {
    std::uint32_t mask = prefix_len >= 32 ? ~0u : ~0u << (32 - prefix_len);
    return addr & mask;
  };
  while (prefix_len > 8 && block_of(base) != block_of(base + r_y + 1)) {
    prefix_len--;
  }
  bed.make_guard(
      guard::Scheme::FabricatedNsIp, 0.0,
      [r_y](guard::RemoteGuardNode::Config& gc) { gc.r_y = r_y; },
      prefix_len);

  auto attacker = std::make_unique<attack::CookieGuessNode>(
      bed.sim, "sprayer",
      attack::FloodNodeBase::Config{.own_address = net::Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 100000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::SubnetAddress,
          .victim = net::Ipv4Address(10, 99, 0, 1),
          .subnet_base = kSubnetBase,
          .r_y = r_y});
  attacker->start();
  bed.sim.run_for(seconds(1));
  attacker->stop();
  Result r;
  r.attack_sent = attacker->flood_stats().sent;
  r.penetrated = bed.guard->guard_stats().forwarded_to_ans;
  return r;
}

Result run_label_guess() {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::NsName);
  auto attacker = std::make_unique<attack::CookieGuessNode>(
      bed.sim, "guesser",
      attack::FloodNodeBase::Config{.own_address = net::Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 100000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::NsNameLabel,
          .victim = net::Ipv4Address(10, 99, 0, 1),
          .zone = dns::DomainName{}});
  attacker->start();
  bed.sim.run_for(seconds(1));
  attacker->stop();
  Result r;
  r.attack_sent = attacker->flood_stats().sent;
  r.penetrated = bed.guard->guard_stats().forwarded_to_ans;
  return r;
}

}  // namespace

int main() {
  std::printf(
      "ABLATION: cookie range vs spoof false-negative ratio (paper "
      "%sIII.G)\nAttacker sprays 100K guesses/sec for 1 s at one spoofed "
      "victim address.\n\n",
      "\xc2\xa7");
  TablePrinter table({"encoding", "range", "guesses", "penetrated",
                      "measured", "expected"},
                     14);
  table.print_header();
  for (std::uint32_t r_y : {16u, 64u, 250u, 1000u, 16384u}) {
    Result r = run_subnet_spray(r_y);
    double measured = static_cast<double>(r.penetrated) /
                      static_cast<double>(r.attack_sent);
    table.print_row({"fabricated-ip", "R_y=" + std::to_string(r_y),
                     std::to_string(r.attack_sent),
                     std::to_string(r.penetrated),
                     TablePrinter::num(measured, 5),
                     TablePrinter::num(1.0 / r_y, 5)});
  }
  Result label = run_label_guess();
  table.print_row({"ns-name-label", "2^32", std::to_string(label.attack_sent),
                   std::to_string(label.penetrated),
                   TablePrinter::num(static_cast<double>(label.penetrated) /
                                         static_cast<double>(label.attack_sent),
                                     5),
                   TablePrinter::num(1.0 / 4294967296.0, 5)});
  std::printf(
      "\nShape check: fabricated-ip penetration tracks 1/R_y; the 2^32\n"
      "NS-name label (and a fortiori the 2^128 TXT cookie) is unguessable\n"
      "at any realistic attack rate.\n");
  return 0;
}
