// Ablation — the two rate limiters of Fig. 4.
//
// (1) Rate-Limiter1 (reflector protection): a spoofed flood impersonating
//     one victim triggers cookie responses toward that victim. Without
//     RL1 the guard reflects the full attack rate; with RL1 the victim
//     receives only the configured trickle. (The paper: "Rate-Limiter1
//     tracks the top requesters and limits the rate of cookie response to
//     them", preventing the ANS from being used as a traffic reflector.)
//
// (2) Rate-Limiter2 (verified-host throttling): a non-spoofed zombie that
//     plays the cookie protocol honestly still cannot exceed its nominal
//     per-host rate. ("Even when an attacker successfully obtains a
//     host's cookie, not much damage can be done", §III.G.)
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct ReflectionResult {
  std::uint64_t attack_sent;
  std::uint64_t victim_packets;
  std::uint64_t victim_bytes;
};

ReflectionResult run_reflection(bool limiter_on) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::NsName, 0.0,
                 [limiter_on](guard::RemoteGuardNode::Config& gc) {
                   if (limiter_on) {
                     // The paper's deployment settings.
                     gc.rl1 = ratelimit::CookieResponseLimiter::Config{};
                   }
                 });
  attack::VictimNode victim(bed.sim, "victim", net::Ipv4Address(10, 99, 0, 1));
  bed.sim.add_host_route(net::Ipv4Address(10, 99, 0, 1), &victim);
  auto* attacker = bed.add_attacker(
      50000, net::Ipv4Address(10, 9, 9, 9),
      attack::SpoofedFloodNode::SpoofConfig{
          .spoof_base = net::Ipv4Address(10, 99, 0, 1), .spoof_range = 1});
  attacker->start();
  bed.sim.run_for(seconds(1));
  attacker->stop();
  return ReflectionResult{attacker->flood_stats().sent,
                          victim.packets_received(),
                          victim.bytes_received()};
}

struct ZombieResult {
  std::uint64_t zombie_completed;
  std::uint64_t ans_queries;
};

ZombieResult run_zombie(bool limiter_on, double nominal_rate) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::ModifiedDns, 0.0,
                 [&](guard::RemoteGuardNode::Config& gc) {
                   if (limiter_on) {
                     gc.rl2.per_host_rate = nominal_rate;
                     gc.rl2.per_host_burst = nominal_rate / 4;
                   }
                 });
  // The zombie holds a legitimate cookie and floods at full closed-loop
  // speed with 64 outstanding requests.
  bed.add_driver(DriveMode::ModifiedHit, 64);
  SimDuration window = bed.measure(milliseconds(500), seconds(1));
  (void)window;
  return ZombieResult{bed.drivers[0]->driver_stats().completed,
                      bed.sim_ans->ans_stats().udp_queries};
}

}  // namespace

int main() {
  std::printf("ABLATION: Rate-Limiter1 and Rate-Limiter2 (Fig. 4)\n\n");

  std::printf("(1) Reflector protection - 50K spoofed req/s impersonating "
              "one victim for 1 s:\n\n");
  TablePrinter t1({"rl1", "attack_sent", "reflected_pkts", "reflected_KB"},
                  16);
  t1.print_header();
  for (bool on : {false, true}) {
    ReflectionResult r = run_reflection(on);
    t1.print_row({on ? "enabled" : "disabled",
                  std::to_string(r.attack_sent),
                  std::to_string(r.victim_packets),
                  workload::TablePrinter::num(
                      static_cast<double>(r.victim_bytes) / 1024.0, 1)});
  }

  std::printf("\n(2) Verified-zombie throttling - a cookie-holding flooder "
              "at 64 outstanding requests, nominal rate 200/s:\n\n");
  TablePrinter t2({"rl2", "zombie_req/s", "ans_queries/s"}, 16);
  t2.print_header();
  for (bool on : {false, true}) {
    ZombieResult r = run_zombie(on, 200.0);
    t2.print_row({on ? "enabled" : "disabled",
                  std::to_string(r.zombie_completed),
                  std::to_string(r.ans_queries)});
  }
  std::printf(
      "\nShape check: RL1 cuts reflected traffic by orders of magnitude;\n"
      "RL2 pins a verified flooder to its nominal rate.\n");
  return 0;
}
