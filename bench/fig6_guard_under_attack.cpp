// Figure 6 — DNS guard throughput under attack (modified-DNS scheme):
//   (a) throughput of legitimate requests vs attack rate (0-250K req/s),
//       protection enabled vs disabled;
//   (b) CPU utilization of the remote DNS guard, enabled vs disabled.
//
// Paper setup (§IV.E): one legitimate LRS that already holds the correct
// cookie saturates the ANS (ANS-simulator capacity ~110K/s); an attacker
// sends spoofed requests without the right cookie at increasing rates.
// Paper shape: disabled decays linearly to ~0 at 110K attack; enabled
// holds >=100K legit to 200K attack and ~80K at 250K, where the guard's
// CPU saturates; spoof-detection CPU overhead is 15-25%.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct Point {
  double legit_throughput;
  double guard_cpu;
};

Point run_point(double attack_rate, bool protection) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(protection ? guard::Scheme::ModifiedDns
                            : guard::Scheme::PassThrough);
  // Legitimate LRS "sends requests to the ANS as fast as possible" and
  // already has the cookie (ModifiedHit). With protection disabled it is
  // a plain UDP requester (no cookie machinery to speak to).
  bed.add_driver(protection ? DriveMode::ModifiedHit : DriveMode::PlainUdp,
                 /*concurrency=*/256);
  if (attack_rate > 0) {
    bed.add_attacker(attack_rate, net::Ipv4Address(10, 9, 9, 9),
                     attack::SpoofedFloodNode::SpoofConfig{
                         .random_txt_cookie = protection});
  }
  SimDuration window = bed.measure(milliseconds(500), seconds(2));
  Point p;
  p.legit_throughput =
      static_cast<double>(bed.drivers[0]->driver_stats().completed) /
      window.seconds();
  p.guard_cpu = bed.guard->utilization(window);
  return p;
}

}  // namespace

int main() {
  std::printf(
      "FIGURE 6: Legitimate request throughput and guard CPU vs attack "
      "rate, modified-DNS scheme (paper %sIV.E)\n"
      "Paper shape: disabled decays ~linearly to 0 at ~110K; enabled holds "
      ">=100K to 200K attack, ~80K at 250K; overhead 15-25%%.\n\n",
      "\xc2\xa7");

  TablePrinter table({"attack(K/s)", "legit_on(K/s)", "legit_off(K/s)",
                      "cpu_on(%)", "cpu_off(%)"},
                     16);
  table.print_header();
  for (double attack : {0.0, 25e3, 50e3, 75e3, 100e3, 125e3, 150e3, 175e3,
                        200e3, 225e3, 250e3}) {
    Point on = run_point(attack, /*protection=*/true);
    Point off = run_point(attack, /*protection=*/false);
    table.print_row({TablePrinter::num(attack / 1000, 0),
                     TablePrinter::kilo(on.legit_throughput),
                     TablePrinter::kilo(off.legit_throughput),
                     TablePrinter::percent(on.guard_cpu),
                     TablePrinter::percent(off.guard_cpu)});
  }
  return 0;
}
