// Figure 6 — DNS guard throughput under attack (modified-DNS scheme):
//   (a) throughput of legitimate requests vs attack rate (0-250K req/s),
//       protection enabled vs disabled;
//   (b) CPU utilization of the remote DNS guard, enabled vs disabled.
//
// Paper setup (§IV.E): one legitimate LRS that already holds the correct
// cookie saturates the ANS (ANS-simulator capacity ~110K/s); an attacker
// sends spoofed requests without the right cookie at increasing rates.
// Paper shape: disabled decays linearly to ~0 at 110K attack; enabled
// holds >=100K legit to 200K attack and ~80K at 250K, where the guard's
// CPU saturates; spoof-detection CPU overhead is 15-25%.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::DriveMode;
using workload::TablePrinter;

namespace {

struct Point {
  double legit_throughput;
  double guard_cpu;
};

Point run_point(double attack_rate, bool protection,
                JsonResultWriter* json = nullptr,
                const std::string& counter_prefix = "",
                ProfileCollector* prof = nullptr,
                const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(protection ? guard::Scheme::ModifiedDns
                            : guard::Scheme::PassThrough);
  // Legitimate LRS "sends requests to the ANS as fast as possible" and
  // already has the cookie (ModifiedHit). With protection disabled it is
  // a plain UDP requester (no cookie machinery to speak to).
  bed.add_driver(protection ? DriveMode::ModifiedHit : DriveMode::PlainUdp,
                 /*concurrency=*/256);
  if (attack_rate > 0) {
    bed.add_attacker(attack_rate, net::Ipv4Address(10, 9, 9, 9),
                     attack::SpoofedFloodNode::SpoofConfig{
                         .random_txt_cookie = protection});
  }
  if (json != nullptr) {
    // Observed point: per-window counter deltas ride along in the JSON.
    bed.timeseries_window = quick(milliseconds(250), milliseconds(100));
  }
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(milliseconds(500), milliseconds(200)),
                                   quick(seconds(2), milliseconds(500)));
  if (prof != nullptr) prof->capture(prof_label, bed.last_wall_ns);
  Point p;
  p.legit_throughput =
      static_cast<double>(bed.drivers[0]->driver_stats().completed) /
      window.seconds();
  p.guard_cpu = bed.guard->utilization(window);
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics(), counter_prefix);
    json->add_section("timeseries", bed.sim.timeseries().to_json(2));
  }
  return p;
}

/// A detection-timeline run: the flood switches on mid-window, and the
/// online AttackMonitor (EWMA/MAD over per-window drop deltas) must flag
/// the onset. On onset the simulator's flight recorder dumps metrics,
/// time-series windows, trace rings and open journeys to
/// $DNSGUARD_FLIGHTREC_DIR (default: CWD).
void run_detection_timeline(JsonResultWriter& json) {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::ModifiedDns);
  bed.add_driver(DriveMode::ModifiedHit, /*concurrency=*/256);
  bed.add_attacker(150e3, net::Ipv4Address(10, 9, 9, 9),
                   attack::SpoofedFloodNode::SpoofConfig{
                       .random_txt_cookie = true});
  SimDuration window = quick(seconds(2), milliseconds(600));
  bed.enable_journeys = true;
  bed.timeseries_window = quick(milliseconds(100), milliseconds(50));
  bed.attacker_start_delay = SimDuration{window.ns / 2};

  obs::AttackMonitor monitor;
  monitor.watch("guard.drop.bad_cookie");
  monitor.watch("guard.spoofs_dropped");
  monitor.set_on_onset([&bed](const obs::AttackMonitor::Event& e) {
    bed.sim.flight_recorder().dump("fig6_onset", e.at);
  });
  bed.on_sampling_started = [&] {
    monitor.bind(bed.sim.timeseries(), bed.sim.metrics());
  };
  bed.measure(quick(milliseconds(500), milliseconds(200)), window);

  std::uint64_t onsets = 0;
  for (const auto& e : monitor.events()) onsets += e.onset ? 1 : 0;
  json.add("detect.onsets", onsets);
  json.add("detect.under_attack_at_end",
           static_cast<std::uint64_t>(monitor.under_attack() ? 1 : 0));
  json.add_section("anomaly_events", monitor.events_json(2));
  std::printf("[detect] %zu anomaly event(s), under_attack=%d\n",
              monitor.events().size(), monitor.under_attack() ? 1 : 0);
}

}  // namespace

int main() {
  std::printf(
      "FIGURE 6: Legitimate request throughput and guard CPU vs attack "
      "rate, modified-DNS scheme (paper %sIV.E)\n"
      "Paper shape: disabled decays ~linearly to 0 at ~110K; enabled holds "
      ">=100K to 200K attack, ~80K at 250K; overhead 15-25%%.\n\n",
      "\xc2\xa7");

  TablePrinter table({"attack(K/s)", "legit_on(K/s)", "legit_off(K/s)",
                      "cpu_on(%)", "cpu_off(%)"},
                     16);
  table.print_header();
  JsonResultWriter json("fig6_guard_under_attack");
  std::vector<double> sweep =
      quick_mode()
          ? std::vector<double>{0.0, 100e3, 250e3}
          : std::vector<double>{0.0, 25e3, 50e3, 75e3, 100e3, 125e3,
                                150e3, 175e3, 200e3, 225e3, 250e3};
  // Cost attribution at the sweep's peak attack rate: where do the
  // guard's nanoseconds go when the flood is at its worst?
  ProfileCollector prof;
  for (double attack : sweep) {
    bool last = attack == sweep.back();
    Point on = run_point(attack, /*protection=*/true, last ? &json : nullptr,
                         "", last ? &prof : nullptr, "protected_peak");
    Point off = run_point(attack, /*protection=*/false, nullptr, "",
                          last ? &prof : nullptr, "unprotected_peak");
    table.print_row({TablePrinter::num(attack / 1000, 0),
                     TablePrinter::kilo(on.legit_throughput),
                     TablePrinter::kilo(off.legit_throughput),
                     TablePrinter::percent(on.guard_cpu),
                     TablePrinter::percent(off.guard_cpu)});
    std::string key = "attack_" + TablePrinter::num(attack / 1000, 0) + "k";
    json.add(key + ".legit_on_per_s", on.legit_throughput);
    json.add(key + ".legit_off_per_s", off.legit_throughput);
    json.add(key + ".guard_cpu_on", on.guard_cpu);
    json.add(key + ".guard_cpu_off", off.guard_cpu);
  }
  obs::prof::profiler.disable();
  run_detection_timeline(json);
  prof.attach(json);
  json.write();
  return 0;
}
