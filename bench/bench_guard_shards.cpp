// Shard-per-core scaling curve for the DNS guard (DESIGN.md §13).
//
// Workload: a spoofed verify flood (random TXT cookies, modified-DNS
// scheme) offered well above the guard's aggregate service capacity.
// Every flood packet costs the guard one decode + one MD5 verification +
// one drop and never reaches the ANS, so the guard's own service clock is
// the only bottleneck and the verification rate IS the guard's capacity.
//
// Sweeping num_shards over 1/2/4/8 measures how capacity scales as
// per-source state partitions across independently-clocked shards fed by
// SPSC rings. Acceptance: >= 4x the single-shard verification throughput
// at 8 shards (hash imbalance across shards costs some of the ideal 8x),
// and bit-identical counters when a shard count is re-run (virtual-time
// determinism survives the ring/batch service path).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::TablePrinter;

namespace {

struct Point {
  double verify_rps = 0.0;      // cookie verifications per sim-second
  std::uint64_t dropped = 0;    // spoofs dropped in the window
  std::uint64_t checks = 0;     // cookie checks in the window
};

Point run_point(std::size_t shards, JsonResultWriter* json = nullptr,
                const std::string& counter_prefix = "",
                ProfileCollector* prof = nullptr,
                const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  bed.make_guard(guard::Scheme::ModifiedDns, 0.0,
                 [&](guard::RemoteGuardNode::Config& c) {
                   c.num_shards = shards;
                 });
  // ~2.2 us of guard service per verify-drop caps one shard near 450K/s;
  // 5M/s offered saturates even eight shards. 2^16 spoofed sources keep
  // the source-hash spread across shards dense.
  bed.add_attacker(5e6, net::Ipv4Address(10, 9, 9, 9),
                   attack::SpoofedFloodNode::SpoofConfig{
                       .spoof_base = net::Ipv4Address(10, 200, 0, 0),
                       .spoof_range = 1u << 16,
                       .random_txt_cookie = true});
  bed.enable_profiling = prof != nullptr;
  SimDuration window = bed.measure(quick(milliseconds(200), milliseconds(50)),
                                   quick(seconds(1), milliseconds(100)));
  if (prof != nullptr) prof->capture(prof_label, bed.last_wall_ns);
  Point p;
  p.checks = bed.guard->guard_stats().cookie_checks;
  p.dropped = bed.guard->guard_stats().spoofs_dropped;
  p.verify_rps = static_cast<double>(p.checks) / window.seconds();
  if (json != nullptr) {
    json->add_counters(bed.sim.metrics(), counter_prefix);
  }
  return p;
}

}  // namespace

int main() {
  std::printf(
      "GUARD SHARD SCALING: spoof-verification capacity vs shard count "
      "(saturating verify flood, modified-DNS scheme)\n"
      "Acceptance: >= 4x single-shard throughput at 8 shards; re-running "
      "a shard count reproduces identical counters.\n\n");

  JsonResultWriter json("guard_shards");
  TablePrinter table({"shards", "verify(K/s)", "dropped", "scaling"}, 14);
  table.print_header();

  // Cost attribution at both ends of the sweep: the 1-shard profile is
  // the classic sequential path, the 8-shard one exercises the batched
  // pre-pass (decode + prefetch + bulk verify) across per-shard lanes.
  ProfileCollector prof;
  const std::vector<std::size_t> sweep{1, 2, 4, 8};
  std::vector<Point> points;
  for (std::size_t shards : sweep) {
    bool last = shards == sweep.back();
    bool first = shards == sweep.front();
    Point p = run_point(shards, last ? &json : nullptr, "shards8.",
                        first || last ? &prof : nullptr,
                        "shards" + std::to_string(shards));
    points.push_back(p);
    double scaling = points[0].verify_rps > 0
                         ? p.verify_rps / points[0].verify_rps
                         : 0.0;
    table.print_row({std::to_string(shards),
                     TablePrinter::kilo(p.verify_rps),
                     std::to_string(p.dropped),
                     TablePrinter::num(scaling, 2) + "x"});
    json.add("verify_rps_shards" + std::to_string(shards), p.verify_rps);
  }
  const double scaling_x8 = points.back().verify_rps / points[0].verify_rps;
  json.add("scaling_x8", scaling_x8);

  // Determinism: the 8-shard point re-run must reproduce its counters
  // bit-for-bit (rings and batching preserve virtual-time determinism).
  // The re-run is unprofiled — identical counters with the profiler off
  // double as evidence that probes never touch simulation state.
  obs::prof::profiler.disable();
  Point rerun = run_point(sweep.back());
  json.add("rerun_identical",
           static_cast<std::uint64_t>(rerun.checks == points.back().checks &&
                                      rerun.dropped == points.back().dropped));
  prof.attach(json);
  json.write();

  if (scaling_x8 < 4.0) {
    std::printf("\nFAIL: 8-shard scaling %.2fx below the 4x floor\n",
                scaling_x8);
    return 1;
  }
  if (rerun.checks != points.back().checks ||
      rerun.dropped != points.back().dropped) {
    std::printf("\nFAIL: 8-shard re-run diverged (%llu/%llu checks, "
                "%llu/%llu drops)\n",
                static_cast<unsigned long long>(rerun.checks),
                static_cast<unsigned long long>(points.back().checks),
                static_cast<unsigned long long>(rerun.dropped),
                static_cast<unsigned long long>(points.back().dropped));
    return 1;
  }
  std::printf("\nOK: 8 shards = %.2fx single-shard capacity, re-run "
              "identical\n", scaling_x8);
  return 0;
}
