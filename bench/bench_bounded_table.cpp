// Microbenchmark of common::BoundedTable, the shared bounded per-source
// state container (DESIGN.md §10).
//
// Two phases:
//   - "churn": a mixed find/insert/erase/reap workload over a keyspace
//     16× the capacity with TTL + idle timeouts armed, the steady state
//     every adopter (limiter buckets, NAT table, cookie caches) sees.
//   - "flood": distinct keys sprayed at an LRU table, the 1M-spoofed-
//     source state-exhaustion attack shape; the table must stay at its
//     cap and recycle slots without touching the allocator.
//
// The virtual clock advances deterministically, so the behavioural
// outcomes (hits, evictions, expiries, final size) in the "metrics"
// section are bit-stable and gated by tools/check_bench.py; wall-clock
// ns/op goes to the informational "counters" section (machine-dependent,
// not gated).
#include <cstdint>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/bounded_table.h"

namespace dnsguard {
namespace {

std::uint64_t g_rng_state = 0x9e3779b97f4a7c15ULL;

std::uint64_t rng() {
  std::uint64_t x = g_rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  g_rng_state = x;
  return x;
}

}  // namespace
}  // namespace dnsguard

int main() {
  using namespace dnsguard;
  // No "profile" section here by design: this is a single-stage
  // microbenchmark with no simulator pipeline to attribute — its
  // wall-ns/op metrics *are* the cost model for the one stage it times.
  bench::JsonResultWriter json("bounded_table");

  const std::uint64_t churn_ops =
      bench::quick<std::uint64_t>(5'000'000, 200'000);
  const std::uint64_t flood_keys =
      bench::quick<std::uint64_t>(1'000'000, 100'000);

  // --- churn phase --------------------------------------------------------
  common::BoundedTable<std::uint32_t, std::uint64_t> table(
      {.capacity = 4096,
       .ttl = milliseconds(50),
       .idle_timeout = milliseconds(20)});
  g_rng_state = 0x9e3779b97f4a7c15ULL;
  SimTime now{};
  auto t0 = bench::wall_now();
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    now = now + microseconds(1);
    const std::uint32_t key = static_cast<std::uint32_t>(rng() & 0xffff);
    switch (rng() & 3) {
      case 0:
      case 1: {
        std::uint64_t* v = table.find(key, now);
        if (v != nullptr) *v += 1;
        break;
      }
      case 2:
        table.try_emplace(key, now, i);
        break;
      default:
        if ((rng() & 15) == 0) {
          table.erase(key);
        } else {
          table.reap(now, 4);
        }
        break;
    }
  }
  const double churn_ns = bench::wall_ns_per_op(t0, churn_ops);
  const auto& cs = table.stats();
  json.add("churn_final_size", static_cast<std::uint64_t>(table.size()));
  json.add("churn_hits", cs.hits.value());
  json.add("churn_misses", cs.misses.value());
  json.add("churn_inserts", cs.inserts.value());
  json.add("churn_evicted_capacity", cs.evicted_capacity.value());
  json.add("churn_expired_ttl", cs.expired_ttl.value());
  json.add("churn_expired_idle", cs.expired_idle.value());

  // --- flood phase --------------------------------------------------------
  common::BoundedTable<std::uint32_t, std::uint64_t> flood(
      {.capacity = 4096});
  std::uint64_t flood_evict_cb = 0;
  flood.set_evict_callback(
      [&flood_evict_cb](const std::uint32_t&, std::uint64_t&,
                        common::EvictReason) { ++flood_evict_cb; });
  t0 = bench::wall_now();
  for (std::uint64_t i = 0; i < flood_keys; ++i) {
    now = now + nanoseconds(100);
    flood.try_emplace(static_cast<std::uint32_t>(i), now, i);
  }
  const double flood_ns = bench::wall_ns_per_op(t0, flood_keys);
  json.add("flood_final_size", static_cast<std::uint64_t>(flood.size()));
  json.add("flood_evicted_capacity", flood.stats().evicted_capacity.value());

  std::printf("bounded_table: churn %llu ops (%.1f ns/op), flood %llu keys "
              "(%.1f ns/op), flood table size %zu / cap %zu\n",
              static_cast<unsigned long long>(churn_ops), churn_ns,
              static_cast<unsigned long long>(flood_keys), flood_ns,
              flood.size(), flood.capacity());
  if (flood.size() > flood.capacity() ||
      flood_evict_cb != flood.stats().evicted_capacity.value()) {
    std::printf("FAIL: flood table exceeded its cap or eviction callback "
                "count diverged\n");
    return 1;
  }

  // Wall-clock numbers are machine-dependent: informational only.
  obs::MetricsRegistry wall;
  wall.gauge("wall.churn_op_cost_ns").set(static_cast<std::int64_t>(churn_ns));
  wall.gauge("wall.flood_op_cost_ns").set(static_cast<std::int64_t>(flood_ns));
  json.add_counters(wall);
  json.write();
  return 0;
}
