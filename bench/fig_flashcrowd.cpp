// fig_flashcrowd — flash-crowd vs attack discrimination at Internet scale.
//
// The classic DNS-defense failure mode: a surge of *legitimate* queries
// (breaking news) looks exactly like a flood to a rate detector. This
// bench drives the aggregate client-population engine (millions of LRS
// clients behind one node: Zipf popularity + resolver-cache absorption,
// lognormal per-client rates, empirical RTTs, diurnal load) through the
// modified-DNS guard and asks the AttackMonitor's discriminator to call
// three scenarios correctly:
//
//   flash    — a 4x legitimate surge from a fresh client cohort;
//              must classify flash_crowd, and NEVER attack.
//   flood    — a prefix-hopping spoofed flood (Whac-A-Mole attacker);
//              must classify attack within 2 detector windows.
//   blended  — flash crowd and flood simultaneously; the attack must
//              still be called (malicious mix dominates).
//
// Plus a 10M-client diurnal scenario proving the engine's hybrid fidelity
// keeps Internet-scale populations laptop-runnable and bit-for-bit
// deterministic across reruns.
//
// The classification-quality numbers are asserted in-binary (a wrong
// verdict fails the bench, and CI) and exported to BENCH_fig_flashcrowd
// .json, where the committed baseline gates them like any other bench.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "obs/anomaly.h"
#include "workload/population.h"

using namespace dnsguard;
using namespace dnsguard::bench;
using workload::TablePrinter;

namespace {

void require(bool ok, const char* msg) {
  if (ok) return;
  std::fprintf(stderr, "FAIL: %s\n", msg);
  std::exit(1);
}

struct Durations {
  SimDuration warmup = quick(seconds(1), milliseconds(400));
  SimDuration window = quick(seconds(4), milliseconds(1200));
  SimDuration sample = quick(milliseconds(200), milliseconds(60));
  /// The flash crowd and/or flood switch on mid-window.
  [[nodiscard]] SimTime event_at() const {
    return SimTime{warmup.ns + window.ns / 2};
  }
};

struct ScenarioSpec {
  bool with_flash = false;
  bool with_flood = false;
  bool with_monitor = true;
  double base_rate = 20e3;
  double flood_rate = 150e3;
  std::uint64_t num_clients = 1000000;
  SimDuration diurnal_period{};
};

struct ScenarioResult {
  std::uint64_t attack_onsets = 0;
  std::uint64_t flash_onsets = 0;
  double first_attack_onset_s = -1.0;
  double goodput_per_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t offered = 0;
  std::uint64_t sent = 0;
  std::uint64_t flash_sent = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t digest = 0;
  bool under_attack_at_end = false;
  std::string events_json = "[]";
};

ScenarioResult run_scenario(const ScenarioSpec& spec, const Durations& d,
                            JsonResultWriter* json = nullptr,
                            const std::string& prefix = "",
                            ProfileCollector* prof = nullptr,
                            const std::string& prof_label = "") {
  Testbed bed;
  bed.make_ans(AnsKind::Simulator);
  // Internet-scale guard sizing: the default 64K-host RL2 table (which
  // refuses new hosts at capacity, §III.G) is sized for one site, not
  // for millions of distinct legitimate resolvers — at 10M clients it
  // would start refusing real traffic mid-run.
  bed.make_guard(guard::Scheme::ModifiedDns, 0.0,
                 [](guard::RemoteGuardNode::Config& gc) {
                   gc.rl1.max_buckets = 1 << 20;
                   gc.rl2.max_hosts = 1 << 20;
                 });

  workload::ClientPopulationNode::Config pc;
  pc.population.num_clients = spec.num_clients;
  pc.population.base_rate = spec.base_rate;
  pc.population.diurnal_period = spec.diurnal_period;
  pc.population.prefix_base = net::Ipv4Address(100, 0, 0, 0);
  pc.population.prefix_len = 8;
  pc.target = {kAnsIp, net::kDnsPort};
  if (spec.with_flash) {
    workload::FlashCrowdEvent e;
    e.start = d.event_at();
    e.ramp = quick(milliseconds(500), milliseconds(150));
    e.hold = quick(seconds(2), milliseconds(600));
    e.decay = quick(milliseconds(500), milliseconds(150));
    e.peak_multiplier = 4.0;
    e.new_source_fraction = 0.7;
    e.cohort_clients = 100000;
    e.hot_rank = 5;
    pc.population.flash_events.push_back(e);
  }
  workload::ClientPopulationNode population(bed.sim, "population", pc);

  std::unique_ptr<attack::PrefixHopFloodNode> flood;
  if (spec.with_flood) {
    flood = std::make_unique<attack::PrefixHopFloodNode>(
        bed.sim, "prefix-hop-flood",
        attack::FloodNodeBase::Config{
            .own_address = net::Ipv4Address(10, 9, 9, 9),
            .target = {kAnsIp, net::kDnsPort},
            .rate = spec.flood_rate,
            .qname_base = "www.foo.com."},
        attack::PrefixHopFloodNode::HopConfig{
            .prefix_base = net::Ipv4Address(10, 200, 0, 0),
            .prefix_span = 1 << 12,
            .num_prefixes = 32,
            .hop_interval = quick(milliseconds(500), milliseconds(150)),
            .random_txt_cookie = true});
    attack::PrefixHopFloodNode* f = flood.get();
    bed.sim.schedule_in(d.event_at() - SimTime{}, [f] { f->start(); });
  }

  // The discriminator: an onset is an attack when the guard's
  // drop-taxonomy work dominates the offered load; a clean-verifying
  // surge is a flash crowd. Source growth rides on events for forensics.
  // The deviation floor sits well above Poisson noise on the steady
  // per-window load (~sqrt(1000)≈30) so only real surges fire.
  obs::AnomalyConfig acfg;
  acfg.dev_floor = 50.0;
  obs::AttackMonitor monitor(acfg);
  monitor.watch("guard.requests_seen");
  obs::DiscriminatorConfig disc;
  disc.malicious_series = {"guard.spoofs_dropped", "guard.rl1_throttled",
                           "guard.rl2_throttled", "guard.malformed"};
  disc.load_series = {"guard.requests_seen"};
  disc.source_series = {"guard.rl1.table.inserts",
                        "guard.rl2.table.inserts"};
  disc.attack_mix_threshold = 0.4;
  monitor.set_discriminator(disc);

  population.start();
  bed.sim.run_for(d.warmup);
  bed.sim.metrics().reset_values();
  population.reset_stats();
  bed.guard->reset_guard_stats();
  bed.guard->reset_stats();
  bed.sim_ans->reset_ans_stats();
  bed.sim_ans->reset_stats();
  bed.sim.start_timeseries(d.sample);
  if (spec.with_monitor) {
    monitor.bind(bed.sim.timeseries(), bed.sim.metrics());
  }
  // This bench drives the window by hand (no bed.measure()), so the
  // cost-attribution capture is wired by hand too. Profiling reads only
  // the host clock, so the digest-determinism asserts are unaffected.
  auto prof_t0 = wall_now();
  if (prof != nullptr) {
    obs::prof::profiler.enable();
    obs::prof::profiler.set_sampling(bed.profile_sample_stride,
                                     bed.profile_sample_block);
    obs::prof::profiler.reset();
    prof_t0 = wall_now();
  }
  bed.sim.run_for(d.window);
  if (prof != nullptr) {
    prof->capture(prof_label, wall_seconds_since(prof_t0) * 1e9);
    obs::prof::profiler.disable();
  }
  bed.sim.stop_timeseries();

  ScenarioResult r;
  const workload::PopulationStats& ps = population.population_stats();
  r.completed = ps.completed.value();
  r.offered = ps.offered.value();
  r.sent = ps.sent.value();
  r.flash_sent = ps.flash_sent.value();
  r.cache_hits = ps.cache_hits.value();
  r.goodput_per_s = static_cast<double>(r.completed) / d.window.seconds();
  r.digest = population.sent_digest();
  r.under_attack_at_end = monitor.under_attack();
  for (const auto& e : monitor.events()) {
    if (!e.onset) continue;
    if (e.kind == obs::AttackMonitor::Kind::kAttack) {
      ++r.attack_onsets;
      const double t = static_cast<double>(e.at.ns) / 1e9;
      if (r.first_attack_onset_s < 0) r.first_attack_onset_s = t;
    } else {
      ++r.flash_onsets;
    }
  }
  r.events_json = monitor.events_json(2);

  if (json != nullptr && !prefix.empty()) {
    json->add(prefix + ".attack_onsets", r.attack_onsets);
    json->add(prefix + ".flash_onsets", r.flash_onsets);
    json->add(prefix + ".goodput_per_s", r.goodput_per_s);
    json->add_counters(bed.sim.metrics(), prefix + ".");
  }
  return r;
}

/// Windows elapsed between the event switching on and the onset firing
/// (onsets land on sampler-window boundaries, so this is exact).
double onset_windows(const ScenarioResult& r, const Durations& d) {
  if (r.first_attack_onset_s < 0) return 1e9;
  const double event_s = static_cast<double>(d.event_at().ns) / 1e9;
  return (r.first_attack_onset_s - event_s) /
         (static_cast<double>(d.sample.ns) / 1e9);
}

}  // namespace

int main() {
  std::printf(
      "FIG FLASHCROWD: flash-crowd vs spoofed-flood discrimination over "
      "the aggregate client-population engine.\n"
      "A legitimate 4x surge must NOT raise an attack onset; a "
      "prefix-hopping spoofed flood must, within 2 detector windows.\n\n");

  Durations d;
  JsonResultWriter json("fig_flashcrowd");

  // --- the three discrimination scenarios ----------------------------------
  ScenarioSpec flash_spec;
  flash_spec.with_flash = true;
  ScenarioResult flash = run_scenario(flash_spec, d, &json, "flash");
  json.add_section("anomaly_events_flash", flash.events_json);

  // The no-detector control: same scenario, monitor never bound. The
  // monitor is a pure observer on the virtual clock, so legitimate
  // goodput must stay within 10% (in fact: identical).
  ScenarioSpec control_spec = flash_spec;
  control_spec.with_monitor = false;
  ScenarioResult control = run_scenario(control_spec, d);
  json.add("flash.goodput_control_per_s", control.goodput_per_s);

  ScenarioSpec flood_spec;
  flood_spec.with_flood = true;
  ScenarioResult flood = run_scenario(flood_spec, d, &json, "flood");
  json.add_section("anomaly_events_flood", flood.events_json);

  // Cost attribution for the heaviest scenario: flash crowd + flood at
  // once, the population engine and guard both at full tilt.
  ProfileCollector prof;
  ScenarioSpec blended_spec;
  blended_spec.with_flash = true;
  blended_spec.with_flood = true;
  ScenarioResult blended =
      run_scenario(blended_spec, d, &json, "blended", &prof, "blended");
  json.add_section("anomaly_events_blended", blended.events_json);

  TablePrinter table({"scenario", "goodput(K/s)", "attack_onsets",
                      "flash_onsets", "onset_delay(win)"},
                     18);
  table.print_header();
  table.print_row({"flash", TablePrinter::kilo(flash.goodput_per_s),
                   TablePrinter::num(flash.attack_onsets, 0),
                   TablePrinter::num(flash.flash_onsets, 0), "-"});
  table.print_row({"flood", TablePrinter::kilo(flood.goodput_per_s),
                   TablePrinter::num(flood.attack_onsets, 0),
                   TablePrinter::num(flood.flash_onsets, 0),
                   TablePrinter::num(onset_windows(flood, d), 1)});
  table.print_row({"blended", TablePrinter::kilo(blended.goodput_per_s),
                   TablePrinter::num(blended.attack_onsets, 0),
                   TablePrinter::num(blended.flash_onsets, 0),
                   TablePrinter::num(onset_windows(blended, d), 1)});

  // --- in-binary acceptance asserts ----------------------------------------
  require(flash.attack_onsets == 0,
          "flash crowd raised a false attack onset");
  require(flash.flash_onsets >= 1,
          "flash crowd surge was not detected as flash_crowd");
  require(flood.attack_onsets >= 1, "spoofed flood raised no attack onset");
  require(onset_windows(flood, d) <= 2.0,
          "flood onset later than 2 detector windows");
  require(blended.attack_onsets >= 1,
          "blended scenario raised no attack onset");
  require(onset_windows(blended, d) <= 2.0,
          "blended onset later than 2 detector windows");
  const double dev = std::abs(flash.goodput_per_s - control.goodput_per_s);
  require(dev <= 0.1 * control.goodput_per_s,
          "goodput with detector deviates >10% from no-detector control");

  // Precision/recall over the attack class: the flood and blended runs
  // must classify attack (2 positives), the flash run must not (any
  // attack onset there is a false positive).
  const double tp = (flood.attack_onsets > 0 ? 1.0 : 0.0) +
                    (blended.attack_onsets > 0 ? 1.0 : 0.0);
  const double fp = flash.attack_onsets > 0 ? 1.0 : 0.0;
  const double precision = tp + fp > 0 ? tp / (tp + fp) : 1.0;
  const double recall = tp / 2.0;
  json.add("detector.precision", precision);
  json.add("detector.recall", recall);
  json.add("detector.flash_recall", flash.flash_onsets >= 1 ? 1.0 : 0.0);
  std::printf("\n[detector] precision=%.2f recall=%.2f flash_recall=%.2f\n",
              precision, recall, flash.flash_onsets >= 1 ? 1.0 : 0.0);

  // --- 10M-client diurnal scenario: scale + determinism --------------------
  ScenarioSpec tenm;
  tenm.num_clients = 10000000;
  tenm.base_rate = 30e3;
  tenm.diurnal_period = quick(seconds(8), seconds(2));
  tenm.with_monitor = false;
  auto t0 = wall_now();
  ScenarioResult run1 = run_scenario(tenm, d, &json, "tenm");
  const double wall_s = wall_seconds_since(t0);
  ScenarioResult run2 = run_scenario(tenm, d);
  require(run1.digest == run2.digest &&
              run1.offered == run2.offered &&
              run1.completed == run2.completed,
          "10M-client diurnal scenario not deterministic across reruns");
  json.add("tenm.offered", run1.offered);
  json.add("tenm.cache_hits", run1.cache_hits);
  json.add("tenm.completed", run1.completed);
  json.add("tenm.goodput_per_s", run1.goodput_per_s);
  json.add("tenm.deterministic", static_cast<std::uint64_t>(1));
  std::printf(
      "[10M] %llu offered (%llu absorbed by resolver caches), "
      "%llu completed, deterministic rerun ok, %.1fs wall\n",
      static_cast<unsigned long long>(run1.offered),
      static_cast<unsigned long long>(run1.cache_hits),
      static_cast<unsigned long long>(run1.completed), wall_s);

  prof.attach(json);
  json.write();
  std::printf("\nfig_flashcrowd: all discrimination asserts passed\n");
  return 0;
}
