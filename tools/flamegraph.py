#!/usr/bin/env python3
"""Convert profiler reports to collapsed-stack (flamegraph) format.

The cost-attribution profiler (src/obs/profiler.h) accumulates
per-(parent, stage) edges rather than full call stacks: each edge carries
the total nanoseconds stage spent while its *direct* parent was `parent`.
This tool reconstructs the span tree from those edges and emits one
collapsed-stack line per path with the path's *self* time in nanoseconds:

    root;sim.dispatch;guard.service;guard.decode 48213

which any standard flamegraph renderer (e.g. Brendan Gregg's
flamegraph.pl, speedscope's "collapsed" importer) accepts directly.

Because edges lose the full ancestry (only one parent level is kept), a
stage reached through several parents has its children split across those
paths *proportionally* to each path's share of the stage's total time.
This is exact whenever every stage has a single parent (the common case
here: the dispatch context pins one root) and a principled approximation
otherwise.

Accepted inputs (auto-detected):
  - a bench result (BENCH_*.json) whose "profile" section maps
    label -> report; each label becomes the root frame of its stacks
  - a flight-recorder post-mortem whose "profile" section is one report
  - a bare report object (has a "stages" array)

Usage:
  flamegraph.py INPUT.json [-o OUT.folded] [--label LABEL]
  flamegraph.py --self-test
"""

import argparse
import json
import sys

# Paths deeper than this indicate a cycle in the edge graph (cannot happen
# with well-nested spans, but malformed input must not hang the tool).
MAX_DEPTH = 64


def extract_reports(doc):
    """Returns {label: report} from any accepted input shape."""
    if isinstance(doc, dict) and isinstance(doc.get("stages"), list):
        return {"": doc}
    profile = doc.get("profile") if isinstance(doc, dict) else None
    if isinstance(profile, dict):
        if isinstance(profile.get("stages"), list):
            return {"": profile}
        out = {}
        for label, report in profile.items():
            if isinstance(report, dict) and isinstance(
                report.get("stages"), list
            ):
                out[label] = report
        if out:
            return out
    raise ValueError("no profiler report found in input")


def build_edges(report):
    """Returns ({parent: [(stage, total_ns)]}, {stage: total_ns_all_parents})."""
    children = {}
    inclusive = {}
    for edge in report.get("stages", []):
        parent = edge.get("parent")
        stage = edge.get("stage")
        total = float(edge.get("total_ns", 0.0))
        if not parent or not stage or total <= 0:
            continue
        children.setdefault(parent, []).append((stage, total))
        inclusive[stage] = inclusive.get(stage, 0.0) + total
    return children, inclusive


def collapse_report(report, prefix=""):
    """Returns a list of (stack, self_ns) lines, deepest-first order."""
    children, inclusive = build_edges(report)
    lines = []

    def walk(path, stage, path_ns, depth):
        if depth > MAX_DEPTH:
            return
        kids = children.get(stage, [])
        # This path carries path_ns of stage's inclusive.get(stage) total
        # time; its children scale by that share.
        share = path_ns / inclusive[stage] if inclusive.get(stage) else 1.0
        child_ns = 0.0
        stack = path + [stage]
        for kid, total in kids:
            if kid in stack:
                continue  # malformed input: refuse to cycle
            scaled = total * share
            child_ns += scaled
            walk(stack, kid, scaled, depth + 1)
        self_ns = max(0.0, path_ns - child_ns)
        if round(self_ns) >= 1:
            lines.append((";".join(stack), int(round(self_ns))))

    base = [prefix] if prefix else []
    root_ns = sum(total for _, total in children.get("root", []))
    walk(base, "root", root_ns, 0)
    lines.sort(key=lambda kv: kv[0])
    return lines


def convert(doc, label_filter=None):
    reports = extract_reports(doc)
    if label_filter is not None:
        if label_filter not in reports:
            raise ValueError(
                f"label '{label_filter}' not in profile "
                f"(have: {sorted(reports)})"
            )
        reports = {label_filter: reports[label_filter]}
    out = []
    multi = len(reports) > 1
    for label in sorted(reports):
        prefix = label if multi else ""
        out.extend(collapse_report(reports[label], prefix=prefix))
    return out


def self_test():
    # A two-level tree: root -> dispatch (1000ns) -> {decode 300, verify
    # 500}; dispatch self time must come out as 200.
    report = {
        "stages": [
            {"parent": "root", "stage": "sim.dispatch", "total_ns": 1000.0},
            {
                "parent": "sim.dispatch",
                "stage": "guard.decode",
                "total_ns": 300.0,
            },
            {
                "parent": "sim.dispatch",
                "stage": "guard.verify",
                "total_ns": 500.0,
            },
        ]
    }
    lines = dict(collapse_report(report))
    assert lines == {
        "root;sim.dispatch": 200,
        "root;sim.dispatch;guard.decode": 300,
        "root;sim.dispatch;guard.verify": 500,
    }, lines

    # Multi-parent proportional split: stage "hash" spends 100ns total
    # under "mint" (total 400) and "verify" (total 600) -- wait, edges are
    # per-(parent,stage) so the split IS exact at one level. The
    # approximation only kicks in one level deeper: hash's child "inner"
    # (80ns total) splits 25/75 across the two hash paths.
    report2 = {
        "stages": [
            {"parent": "root", "stage": "mint", "total_ns": 400.0},
            {"parent": "root", "stage": "verify", "total_ns": 600.0},
            {"parent": "mint", "stage": "hash", "total_ns": 25.0},
            {"parent": "verify", "stage": "hash", "total_ns": 75.0},
            {"parent": "hash", "stage": "inner", "total_ns": 80.0},
        ]
    }
    lines2 = dict(collapse_report(report2))
    assert lines2["root;mint;hash;inner"] == 20, lines2
    assert lines2["root;verify;hash;inner"] == 60, lines2
    assert lines2["root;mint;hash"] == 5, lines2
    assert lines2["root;verify;hash"] == 15, lines2
    assert lines2["root;mint"] == 375, lines2

    # Label-keyed bench profile: labels become root frames when >1.
    bench = {
        "bench": "table3",
        "profile": {"hit": report, "miss": report},
    }
    lines3 = dict(convert(bench))
    assert "hit;root;sim.dispatch;guard.decode" in lines3, lines3
    assert "miss;root;sim.dispatch;guard.verify" in lines3, lines3
    # Single-label selection drops the prefix.
    lines4 = dict(convert(bench, label_filter="hit"))
    assert "root;sim.dispatch;guard.decode" in lines4, lines4

    # A bare flight-recorder style doc ("profile" is one report).
    lines5 = dict(convert({"profile": report}))
    assert lines5["root;sim.dispatch"] == 200, lines5

    # Cyclic edge input must terminate and not emit the cycle.
    cyc = {
        "stages": [
            {"parent": "root", "stage": "a", "total_ns": 100.0},
            {"parent": "a", "stage": "b", "total_ns": 60.0},
            {"parent": "b", "stage": "a", "total_ns": 40.0},
        ]
    }
    lines6 = dict(collapse_report(cyc))
    # The cycle edge (b -> a) is refused; the walk terminates and the
    # emitted self times still sum to root's 100ns.
    assert set(lines6) == {"root;a", "root;a;b"}, lines6
    assert sum(lines6.values()) == 100, lines6

    # Empty / disabled profile produces no lines, not an error.
    assert collapse_report({"stages": []}) == []

    print("self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", help="bench/profile JSON file")
    parser.add_argument("-o", "--output", help="output file (default stdout)")
    parser.add_argument(
        "--label", help="emit only this profile label (bench inputs)"
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.input:
        parser.error("input file required (or --self-test)")
    with open(args.input, "r", encoding="utf-8") as f:
        doc = json.load(f)
    try:
        lines = convert(doc, label_filter=args.label)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    text = "".join(f"{stack} {ns}\n" for stack, ns in lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {len(lines)} stack(s) to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
