#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced BENCH_*.json files against committed baselines
and fails (exit 1) when any metric regresses by more than the tolerance
(default 10%). Used by the CI bench-smoke job; the benches must run in the
same mode as the baselines were recorded in (DNSGUARD_BENCH_QUICK=1), where
virtual-time results are bit-for-bit deterministic.

Direction heuristics: metrics are higher-is-better (throughput,
events/sec) unless the key matches a lower-is-better pattern (latency,
cpu, p50/p90/p99). Only the "metrics" section gates; "counters" is
informational (absolute counts legitimately shift as code evolves).

Usage:
  check_bench.py --baseline bench/baselines --current <dir> [--tolerance 0.1]
  check_bench.py --self-test
"""

import argparse
import fnmatch
import json
import os
import sys

LOWER_IS_BETTER_PATTERNS = [
    "*latency*",
    "*_ns",
    "*_us",
    "*_ms",
    "*p50*",
    "*p90*",
    "*p99*",
    "*cpu*",
]


def lower_is_better(key):
    k = key.lower()
    return any(fnmatch.fnmatch(k, pat) for pat in LOWER_IS_BETTER_PATTERNS)


def compare_metrics(name, baseline, current, tolerance):
    """Returns a list of regression description strings (empty = pass)."""
    failures = []
    for key, base_value in baseline.items():
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        if key not in current:
            failures.append(f"{name}: metric '{key}' missing from current run")
            continue
        cur_value = current[key]
        if not isinstance(cur_value, (int, float)) or isinstance(
            cur_value, bool
        ):
            failures.append(f"{name}: metric '{key}' is not numeric")
            continue
        if base_value == 0:
            continue  # no meaningful relative comparison
        change = (cur_value - base_value) / abs(base_value)
        if lower_is_better(key):
            regressed = change > tolerance
            direction = "increased"
        else:
            regressed = change < -tolerance
            direction = "decreased"
        if regressed:
            failures.append(
                f"{name}: '{key}' {direction} beyond {tolerance:.0%} "
                f"tolerance: baseline {base_value:g} -> current {cur_value:g} "
                f"({change:+.1%})"
            )
    return failures


def load_bench(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("metrics", {})


def run_check(baseline_dir, current_dir, tolerance):
    baselines = sorted(
        f
        for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}")
        return 2

    failures = []
    compared = 0
    for fname in baselines:
        current_path = os.path.join(current_dir, fname)
        if not os.path.exists(current_path):
            # A baseline without a fresh result means the bench did not run
            # in this job; skip rather than fail so the gate set can be a
            # subset of the baseline set.
            print(f"skip: {fname} (not produced by this run)")
            continue
        base = load_bench(os.path.join(baseline_dir, fname))
        cur = load_bench(current_path)
        failures.extend(compare_metrics(fname, base, cur, tolerance))
        compared += 1
        print(f"compared: {fname} ({len(base)} metrics)")

    if compared == 0:
        print("error: no benches compared (nothing produced?)")
        return 2
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} bench(es) within {tolerance:.0%} tolerance")
    return 0


def self_test():
    base = {"throughput_rps": 1000.0, "mean_latency_us": 50.0, "cpu": 0.5}

    # Unchanged results pass.
    assert compare_metrics("t", base, dict(base), 0.10) == []
    # Throughput 20% down: regression.
    worse = dict(base, throughput_rps=800.0)
    assert len(compare_metrics("t", base, worse, 0.10)) == 1
    # Throughput 5% down: inside tolerance.
    ok = dict(base, throughput_rps=950.0)
    assert compare_metrics("t", base, ok, 0.10) == []
    # Throughput up: improvement, never a failure.
    better = dict(base, throughput_rps=2000.0)
    assert compare_metrics("t", base, better, 0.10) == []
    # Latency 20% up: regression (lower-is-better heuristic).
    slow = dict(base, mean_latency_us=60.0)
    assert len(compare_metrics("t", base, slow, 0.10)) == 1
    # Latency down: improvement.
    fast = dict(base, mean_latency_us=10.0)
    assert compare_metrics("t", base, fast, 0.10) == []
    # CPU 20% up: regression.
    hot = dict(base, cpu=0.6)
    assert len(compare_metrics("t", base, hot, 0.10)) == 1
    # Missing metric: failure.
    missing = {k: v for k, v in base.items() if k != "cpu"}
    assert len(compare_metrics("t", base, missing, 0.10)) == 1
    # Synthetic >10% regression across the whole-file API.
    assert len(compare_metrics("t", {"rps": 100}, {"rps": 89}, 0.10)) == 1
    assert compare_metrics("t", {"rps": 100}, {"rps": 91}, 0.10) == []

    print("self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="directory with baseline JSONs")
    parser.add_argument("--current", help="directory with fresh JSONs")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or --self-test)")
    return run_check(args.baseline, args.current, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
