#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced BENCH_*.json files against committed baselines
and fails (exit 1) when any metric regresses by more than the tolerance
(default 10%). Used by the CI bench-smoke job; the benches must run in the
same mode as the baselines were recorded in (DNSGUARD_BENCH_QUICK=1), where
virtual-time results are bit-for-bit deterministic.

Direction heuristics: metrics are higher-is-better (throughput,
events/sec) unless the key matches a lower-is-better pattern (latency,
cpu, p50/p90/p99).

The "counters" section is mostly informational (absolute counts
legitimately shift as code evolves): counters that appear or disappear
only warn. Two classes of counters do gate, with a wider tolerance
(default 20%): drop counters (keys containing ".drop." or "dropped")
fail when they *increase* beyond tolerance, and goodput counters
(completed / forwarded_to_ans / responses_relayed / responses_delivered)
fail when they *decrease* beyond tolerance — together they catch a guard
that silently starts shedding legitimate traffic.

The "profile" section (per-label cost-attribution reports from
src/obs/profiler.h) is compared warn-only: a stage whose share of wall
time drifts beyond --profile-share-tolerance (absolute share points,
default 0.05), a stage present in the run but absent from the baseline
(or vice versa), or a whole label appearing/disappearing all warn but
never fail. Wall-clock shares are hardware-dependent, so the profile
gate stays advisory until per-machine baselines exist.

Usage:
  check_bench.py --baseline bench/baselines --current <dir> [--tolerance 0.1]
  check_bench.py --self-test
"""

import argparse
import fnmatch
import json
import os
import sys
import tempfile

LOWER_IS_BETTER_PATTERNS = [
    "*latency*",
    "*_ns",
    "*_us",
    "*_ms",
    "*p50*",
    "*p90*",
    "*p99*",
    "*cpu*",
]


def lower_is_better(key):
    k = key.lower()
    return any(fnmatch.fnmatch(k, pat) for pat in LOWER_IS_BETTER_PATTERNS)


# Counter keys that gate (everything else in "counters" is warn-only).
DROP_COUNTER_PATTERNS = ["*.drop.*", "*dropped*"]
GOODPUT_COUNTER_PATTERNS = [
    "*completed*",
    "*forwarded_to_ans*",
    "*responses_relayed*",
    "*responses_delivered*",
]


def counter_class(key):
    """'drop', 'goodput', or None for informational counters."""
    k = key.lower()
    if any(fnmatch.fnmatch(k, pat) for pat in DROP_COUNTER_PATTERNS):
        return "drop"
    if any(fnmatch.fnmatch(k, pat) for pat in GOODPUT_COUNTER_PATTERNS):
        return "goodput"
    return None


def compare_counters(name, baseline, current, tolerance):
    """Returns (failures, warnings) for the "counters" section."""
    failures = []
    warnings = []
    for key in sorted(set(current) - set(baseline)):
        warnings.append(f"{name}: new counter '{key}' (no baseline yet)")
    for key, base_value in baseline.items():
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        cls = counter_class(key)
        if key not in current:
            if cls is None:
                warnings.append(
                    f"{name}: counter '{key}' missing from current run"
                )
            else:
                failures.append(
                    f"{name}: {cls} counter '{key}' missing from current run"
                )
            continue
        if cls is None or base_value == 0:
            continue
        cur_value = current[key]
        if not isinstance(cur_value, (int, float)) or isinstance(
            cur_value, bool
        ):
            failures.append(f"{name}: counter '{key}' is not numeric")
            continue
        change = (cur_value - base_value) / abs(base_value)
        if cls == "drop" and change > tolerance:
            failures.append(
                f"{name}: drop counter '{key}' increased beyond "
                f"{tolerance:.0%}: baseline {base_value:g} -> current "
                f"{cur_value:g} ({change:+.1%})"
            )
        elif cls == "goodput" and change < -tolerance:
            failures.append(
                f"{name}: goodput counter '{key}' decreased beyond "
                f"{tolerance:.0%}: baseline {base_value:g} -> current "
                f"{cur_value:g} ({change:+.1%})"
            )
    return failures, warnings


def compare_metrics(name, baseline, current, tolerance):
    """Returns a list of regression description strings (empty = pass)."""
    failures = []
    for key, base_value in baseline.items():
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        if key not in current:
            failures.append(f"{name}: metric '{key}' missing from current run")
            continue
        cur_value = current[key]
        if not isinstance(cur_value, (int, float)) or isinstance(
            cur_value, bool
        ):
            failures.append(f"{name}: metric '{key}' is not numeric")
            continue
        if base_value == 0:
            continue  # no meaningful relative comparison
        change = (cur_value - base_value) / abs(base_value)
        if lower_is_better(key):
            regressed = change > tolerance
            direction = "increased"
        else:
            regressed = change < -tolerance
            direction = "decreased"
        if regressed:
            failures.append(
                f"{name}: '{key}' {direction} beyond {tolerance:.0%} "
                f"tolerance: baseline {base_value:g} -> current {cur_value:g} "
                f"({change:+.1%})"
            )
    return failures


def profile_shares(profile):
    """Flattens a per-label profile section to {"label:parent>stage": share}.

    Accepts either {label: report} or a bare report (treated as one
    unnamed label). Edges without a "share" field (profile captured with
    no wall measurement) are skipped.
    """
    if not isinstance(profile, dict):
        return {}
    if isinstance(profile.get("stages"), list):
        profile = {"": profile}
    out = {}
    for label, report in profile.items():
        if not isinstance(report, dict):
            continue
        for edge in report.get("stages", []):
            share = edge.get("share")
            if not isinstance(share, (int, float)):
                continue
            key = f"{label}:{edge.get('parent')}>{edge.get('stage')}"
            out[key] = float(share)
    return out


def compare_profiles(name, baseline, current, share_tolerance):
    """Returns warnings only — the profile section never gates (yet)."""
    warnings = []
    base = profile_shares(baseline)
    cur = profile_shares(current)
    if not base and not cur:
        return warnings
    for key in sorted(set(cur) - set(base)):
        warnings.append(
            f"{name}: profile stage '{key}' present in run but absent "
            f"from baseline (share {cur[key]:.1%})"
        )
    for key in sorted(set(base) - set(cur)):
        warnings.append(
            f"{name}: profile stage '{key}' in baseline but absent from "
            f"this run"
        )
    for key in sorted(set(base) & set(cur)):
        drift = cur[key] - base[key]
        if abs(drift) > share_tolerance:
            warnings.append(
                f"{name}: profile stage '{key}' share drifted "
                f"{drift:+.1%} (baseline {base[key]:.1%} -> current "
                f"{cur[key]:.1%}, tolerance ±{share_tolerance:.0%})"
            )
    return warnings


def load_bench(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("metrics", {}), doc.get("counters", {}), doc.get(
        "profile", {}
    )


def run_check(
    baseline_dir,
    current_dir,
    tolerance,
    counter_tolerance,
    profile_share_tolerance=0.05,
):
    baselines = sorted(
        f
        for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}")
        return 2

    failures = []
    warnings = []
    compared = 0
    for fname in baselines:
        current_path = os.path.join(current_dir, fname)
        if not os.path.exists(current_path):
            # A baseline without a fresh result means the bench did not run
            # in this job; skip rather than fail so the gate set can be a
            # subset of the baseline set.
            print(f"skip: {fname} (not produced by this run)")
            continue
        baseline_path = os.path.join(baseline_dir, fname)
        base_metrics, base_counters, base_profile = load_bench(baseline_path)
        cur_metrics, cur_counters, cur_profile = load_bench(current_path)
        failures.extend(
            compare_metrics(fname, base_metrics, cur_metrics, tolerance)
        )
        cfail, cwarn = compare_counters(
            fname, base_counters, cur_counters, counter_tolerance
        )
        failures.extend(cfail)
        warnings.extend(cwarn)
        warnings.extend(
            compare_profiles(
                fname, base_profile, cur_profile, profile_share_tolerance
            )
        )
        compared += 1
        print(
            f"compared: {fname} ({len(base_metrics)} metrics, "
            f"{len(base_counters)} counters) against {baseline_path}"
        )

    if compared == 0:
        print("error: no benches compared (nothing produced?)")
        return 2
    if warnings:
        print(f"\n{len(warnings)} warning(s) (non-fatal):")
        for w in warnings:
            print(f"  warn: {w}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"\nOK: {compared} bench(es) within {tolerance:.0%} metric / "
        f"{counter_tolerance:.0%} counter tolerance"
    )
    return 0


def self_test():
    base = {"throughput_rps": 1000.0, "mean_latency_us": 50.0, "cpu": 0.5}

    # Unchanged results pass.
    assert compare_metrics("t", base, dict(base), 0.10) == []
    # Throughput 20% down: regression.
    worse = dict(base, throughput_rps=800.0)
    assert len(compare_metrics("t", base, worse, 0.10)) == 1
    # Throughput 5% down: inside tolerance.
    ok = dict(base, throughput_rps=950.0)
    assert compare_metrics("t", base, ok, 0.10) == []
    # Throughput up: improvement, never a failure.
    better = dict(base, throughput_rps=2000.0)
    assert compare_metrics("t", base, better, 0.10) == []
    # Latency 20% up: regression (lower-is-better heuristic).
    slow = dict(base, mean_latency_us=60.0)
    assert len(compare_metrics("t", base, slow, 0.10)) == 1
    # Latency down: improvement.
    fast = dict(base, mean_latency_us=10.0)
    assert compare_metrics("t", base, fast, 0.10) == []
    # CPU 20% up: regression.
    hot = dict(base, cpu=0.6)
    assert len(compare_metrics("t", base, hot, 0.10)) == 1
    # Missing metric: failure.
    missing = {k: v for k, v in base.items() if k != "cpu"}
    assert len(compare_metrics("t", base, missing, 0.10)) == 1
    # Synthetic >10% regression across the whole-file API.
    assert len(compare_metrics("t", {"rps": 100}, {"rps": 89}, 0.10)) == 1
    assert compare_metrics("t", {"rps": 100}, {"rps": 91}, 0.10) == []

    # --- counters section ---
    cbase = {
        "guard.drop.bad_cookie": 1000,
        "guard.spoofs_dropped": 1000,
        "driver.completed": 500,
        "guard.forwarded_to_ans": 500,
        "sim.events_dispatched": 123456,
    }
    # Unchanged: clean.
    f, w = compare_counters("t", cbase, dict(cbase), 0.20)
    assert f == [] and w == []
    # New counter key: warn-only, never fails.
    f, w = compare_counters("t", cbase, dict(cbase, extra=1), 0.20)
    assert f == [] and len(w) == 1
    # Informational counter drifting wildly: not a failure.
    f, _ = compare_counters(
        "t", cbase, dict(cbase, **{"sim.events_dispatched": 999}), 0.20
    )
    assert f == []
    # Drop counter up 30%: regression.
    f, _ = compare_counters(
        "t", cbase, dict(cbase, **{"guard.drop.bad_cookie": 1300}), 0.20
    )
    assert len(f) == 1
    # Drop counter down: fine (fewer drops is not a regression).
    f, _ = compare_counters(
        "t", cbase, dict(cbase, **{"guard.spoofs_dropped": 100}), 0.20
    )
    assert f == []
    # Goodput down 30%: regression; up: fine.
    f, _ = compare_counters(
        "t", cbase, dict(cbase, **{"driver.completed": 350}), 0.20
    )
    assert len(f) == 1
    f, _ = compare_counters(
        "t", cbase, dict(cbase, **{"guard.forwarded_to_ans": 900}), 0.20
    )
    assert f == []
    # Within counter tolerance: fine both ways.
    f, _ = compare_counters(
        "t",
        cbase,
        dict(
            cbase,
            **{"guard.drop.bad_cookie": 1150, "driver.completed": 450},
        ),
        0.20,
    )
    assert f == []
    # Gated counter disappearing: failure; informational one: warning.
    f, w = compare_counters(
        "t",
        {k: v for k, v in cbase.items()},
        {k: v for k, v in cbase.items() if k != "driver.completed"},
        0.20,
    )
    assert len(f) == 1 and w == []
    f, w = compare_counters(
        "t",
        cbase,
        {k: v for k, v in cbase.items() if k != "sim.events_dispatched"},
        0.20,
    )
    assert f == [] and len(w) == 1

    # --- counters-only documents (no "metrics" key at all) ---
    # Some benches gate purely on counters (e.g. deterministic goodput /
    # drop tallies); the whole-file pipeline must treat a missing
    # "metrics" section as empty, not as an error, and still trip on a
    # counter regression.
    counters_only = {
        "counters": {
            "population.completed": 1000,
            "guard.spoofs_dropped": 50,
            "population.offered": 1400,
        }
    }
    with tempfile.TemporaryDirectory() as base_dir, tempfile.TemporaryDirectory() as cur_dir:
        name = "BENCH_counters_only.json"

        def write(directory, doc):
            with open(
                os.path.join(directory, name), "w", encoding="utf-8"
            ) as f:
                json.dump(doc, f)

        write(base_dir, counters_only)
        write(cur_dir, counters_only)
        assert run_check(base_dir, cur_dir, 0.10, 0.20) == 0
        # Goodput counter halves: the gate must fail without any metrics.
        write(
            cur_dir,
            {
                "counters": dict(
                    counters_only["counters"],
                    **{"population.completed": 500},
                )
            },
        )
        assert run_check(base_dir, cur_dir, 0.10, 0.20) == 1
        # Informational counter drifting in a counters-only doc: clean.
        write(
            cur_dir,
            {
                "counters": dict(
                    counters_only["counters"],
                    **{"population.offered": 9999},
                )
            },
        )
        assert run_check(base_dir, cur_dir, 0.10, 0.20) == 0

    # --- profile section (warn-only, never gates) ---
    def prof(shares):
        return {
            "run": {
                "enabled": True,
                "stages": [
                    {
                        "parent": "root",
                        "stage": stage,
                        "total_ns": 1.0,
                        "share": share,
                    }
                    for stage, share in shares.items()
                ],
            }
        }

    pbase = prof({"sim.dispatch": 0.40, "guard.verify": 0.30})
    # Unchanged: clean.
    assert compare_profiles("t", pbase, prof(
        {"sim.dispatch": 0.40, "guard.verify": 0.30}
    ), 0.05) == []
    # Drift within tolerance: clean.
    assert compare_profiles("t", pbase, prof(
        {"sim.dispatch": 0.43, "guard.verify": 0.28}
    ), 0.05) == []
    # Drift beyond tolerance: exactly one warning, zero failures by
    # construction (compare_profiles only ever returns warnings).
    w = compare_profiles("t", pbase, prof(
        {"sim.dispatch": 0.55, "guard.verify": 0.30}
    ), 0.05)
    assert len(w) == 1 and "drifted" in w[0], w
    # Stage present in run but absent from baseline: warn-only.
    w = compare_profiles("t", pbase, prof(
        {"sim.dispatch": 0.40, "guard.verify": 0.30, "guard.mint": 0.10}
    ), 0.05)
    assert len(w) == 1 and "absent from baseline" in w[0], w
    # Stage in baseline missing from run: warn-only.
    w = compare_profiles("t", pbase, prof({"sim.dispatch": 0.40}), 0.05)
    assert len(w) == 1 and "absent from this run" in w[0], w
    # Baseline with no profile section at all vs run with one: warns per
    # stage, still no failure path.
    w = compare_profiles("t", {}, pbase, 0.05)
    assert len(w) == 2, w
    # Bare-report form (flight-recorder style) is accepted.
    bare = {"stages": [{"parent": "root", "stage": "x", "share": 0.5}]}
    assert profile_shares(bare) == {":root>x": 0.5}

    # Whole-file pipeline: a profile drift must stay exit-0.
    with tempfile.TemporaryDirectory() as base_dir, tempfile.TemporaryDirectory() as cur_dir:
        name = "BENCH_profile_drift.json"

        def writep(directory, profile):
            with open(
                os.path.join(directory, name), "w", encoding="utf-8"
            ) as f:
                json.dump({"metrics": {"rps": 100}, "profile": profile}, f)

        writep(base_dir, pbase)
        writep(cur_dir, prof({"sim.dispatch": 0.90, "guard.rl1": 0.05}))
        assert run_check(base_dir, cur_dir, 0.10, 0.20) == 0

    print("self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="directory with baseline JSONs")
    parser.add_argument("--current", help="directory with fresh JSONs")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.20,
        help="relative tolerance for gated drop/goodput counters",
    )
    parser.add_argument(
        "--profile-share-tolerance",
        type=float,
        default=0.05,
        help="absolute share-point tolerance for warn-only profile diffs",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or --self-test)")
    return run_check(
        args.baseline,
        args.current,
        args.tolerance,
        args.counter_tolerance,
        args.profile_share_tolerance,
    )


if __name__ == "__main__":
    sys.exit(main())
