// Fixture: MUST FAIL the drop-reason rule.
//
// Two classic violations: a drop-classed counter incremented with no
// DropReason charged anywhere nearby, and a drop charged explicitly to
// DropReason::kNone (which the PR 4 runtime audit would only catch if a
// test happened to drive this path).

namespace obs {
enum class DropReason { kNone, kMalformed };
struct DropCounters {
  void count(DropReason) {}
};
}  // namespace obs

namespace dnsguard {

struct Stats {
  unsigned long long dropped = 0;
};

bool handle_bad_packet(Stats& stats) {
  stats.dropped++;
  return false;
}

void charge_none(obs::DropCounters* drops) {
  drops->count(obs::DropReason::kNone);
}

}  // namespace dnsguard
