// Fixture: MUST FAIL the shard-isolation rule (both passes).
//
// Two violations: per-source state (a BoundedTable and a rate limiter)
// declared outside the nested Shard struct with no shardsafe annotation,
// and a hard-coded `shards_[0]` subscript inside the batch path — every
// lane would read lane 0's counters instead of its own.
#include <cstdint>
#include <memory>
#include <vector>

namespace common {
template <typename K, typename V>
struct BoundedTable {};
}  // namespace common

namespace dnsguard {

struct TokenLimiter {
  bool admit(std::uint32_t) { return true; }
};

struct Packet {
  std::uint32_t src = 0;
};

class LeakyGuard {
 public:
  void process(const Packet& p) {
    // Violation: constant subscript on the per-packet path.
    Shard& s = *shards_[0];
    if (!s.busy && !shared_rl_.admit(p.src)) s.busy = true;
  }

 private:
  struct Shard {
    bool busy = false;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  // Violations: per-source mutable state outside Shard, unannotated.
  common::BoundedTable<std::uint32_t, std::uint64_t> per_source_;
  TokenLimiter shared_rl_;
};

}  // namespace dnsguard
