// Fixture: MUST FAIL the bounded-state rule.
//
// A per-source table keyed by an attacker-controlled IPv4 address in a
// std::unordered_map: unbounded growth under a spoofed flood, the exact
// state-exhaustion vector of Guo et al. section V.
#include <cstdint>
#include <unordered_map>

namespace dnsguard {

struct PerSourceState {
  std::uint64_t packets = 0;
};

struct FloodTarget {
  std::unordered_map<std::uint32_t, PerSourceState> per_source_;
};

}  // namespace dnsguard
