// Fixture: MUST PASS the drop-reason rule.
//
// Every drop site charges a concrete DropReason — either directly in the
// statement window, or by taking the reason as a parameter (the
// drop_spoof/drop_other helper pattern from src/guard/remote_guard.cpp).

namespace obs {
enum class DropReason { kNone, kMalformed, kRateLimited1 };
struct DropCounters {
  void count(DropReason) {}
};
}  // namespace obs

namespace dnsguard {

struct Stats {
  unsigned long long dropped = 0;
  unsigned long long throttled = 0;
};

bool handle_bad_packet(Stats& stats, obs::DropCounters* drops) {
  stats.dropped++;
  drops->count(obs::DropReason::kMalformed);
  return false;
}

// A helper that takes the reason as a parameter satisfies the rule: the
// caller chose the reason, this function just does the bookkeeping.
void drop_with(Stats& stats, obs::DropCounters* drops,
               obs::DropReason reason) {
  stats.throttled++;
  drops->count(reason);
}

}  // namespace dnsguard
