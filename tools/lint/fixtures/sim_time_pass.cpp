// Fixture: MUST PASS the sim-time-purity rule.
//
// Simulation code takes the sim clock as input (SimTime parameters or a
// clock callback) instead of reading a wall clock.
#include <cstdint>

namespace dnsguard {

using SimTime = std::int64_t;

struct Reaper {
  SimTime last_sweep = 0;

  bool due(SimTime now, SimTime interval) {
    if (now - last_sweep < interval) {
      return false;
    }
    last_sweep = now;
    return true;
  }
};

}  // namespace dnsguard
