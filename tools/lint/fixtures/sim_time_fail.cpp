// Fixture: MUST FAIL the sim-time-purity rule.
//
// Reading a wall clock inside simulation code makes runs nondeterministic
// and decouples telemetry windows from the sim clock; only
// src/common/time.cpp and bench/bench_common.h may touch real time.
#include <chrono>

namespace dnsguard {

long long wall_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace dnsguard
