// Fixture: MUST FAIL the determinism rule.
//
// Three nondeterminism sources: host entropy via std::random_device,
// iteration over an unordered container (bucket order varies across
// standard libraries and runs), and a pointer-keyed map whose ordering
// depends on heap layout.
#include <map>
#include <random>
#include <unordered_map>

namespace dnsguard {

struct Node {};

struct Telemetry {
  std::unordered_map<int, long long> counters_;
  // Violation: pointer-keyed container.
  std::map<Node*, int> owners_;

  long long dump() const {
    long long sum = 0;
    // Violation: iteration order is bucket order.
    for (const auto& kv : counters_) sum += kv.second;
    return sum;
  }
};

inline unsigned roll() {
  // Violation: host entropy.
  std::random_device rd;
  return rd();
}

}  // namespace dnsguard
