// Fixture: MUST PASS the determinism rule.
//
// Randomness comes from a seeded PRNG, nodes are keyed by a stable
// registration id (never by pointer value), and the unordered map is used
// for O(1) lookup only — iteration for reporting walks a
// registration-ordered vector, so output order is identical across runs.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dnsguard {

struct Rng {
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ = state_ * 6364136223846793005ULL + 1; }
  std::uint64_t state_;
};

struct Registry {
  std::unordered_map<std::uint64_t, int> by_id_;
  std::vector<std::uint64_t> order_;

  void add(std::uint64_t id, int v) {
    by_id_[id] = v;
    order_.push_back(id);
  }

  int lookup(std::uint64_t id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? -1 : it->second;
  }

  long long report_sum() const {
    long long sum = 0;
    for (std::uint64_t id : order_) sum += lookup(id);
    return sum;
  }
};

inline std::uint64_t jitter(Rng& rng) { return rng.next() % 100; }

}  // namespace dnsguard
