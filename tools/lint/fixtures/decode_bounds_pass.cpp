// Fixture: MUST PASS the decode-bounds rule.
//
// A decode path written entirely against the dns::Cursor surface:
// bounds-checked big-endian reads, a window fencing the length-prefixed
// RDATA, and jump_back/resume for the compression pointer — no raw
// offset arithmetic anywhere.
#include <cstdint>
#include <optional>

namespace dns {

struct Cursor {
  struct Mark {};
  bool ok() const { return true; }
  std::uint8_t u8() { return 0; }
  std::uint16_t u16() { return 0; }
  bool push_window(std::size_t) { return true; }
  bool at_limit() const { return true; }
  void pop_window() {}
  bool jump_back(std::size_t) { return true; }
  Mark mark() const { return {}; }
  void resume(Mark) {}
};

struct Record {
  std::uint16_t type = 0;
};

inline std::optional<Record> decode_record(Cursor& c) {
  Record r;
  r.type = c.u16();
  std::uint16_t rdlength = c.u16();
  if (!c.ok() || !c.push_window(rdlength)) return std::nullopt;
  while (!c.at_limit()) (void)c.u8();
  c.pop_window();
  return c.ok() ? std::optional<Record>(r) : std::nullopt;
}

}  // namespace dns
