// Fixture: MUST PASS the hot-path-alloc rule.
//
// The hot-path root allocates nothing; the allocating helper below is not
// reachable from any root, and the one allocation that is reachable is
// covered by an annotation with a reason.
#include <vector>

namespace dnsguard {

struct EventQueue {
  void pop();
  void grow_slots();
  int heap_[64] = {};
  int top_ = 0;
  std::vector<int> slots_;
};

void EventQueue::pop() {
  if (top_ > 0) {
    heap_[0] = heap_[--top_];
  }
  // DNSGUARD_LINT_ALLOW(alloc): slots recycle after warmup; growth is
  // amortised to zero in steady state (see DESIGN.md section 7)
  slots_.push_back(top_);
}

// Cold path: only called from setup code, never from a hot-path root.
void cold_setup(std::vector<int>& v) {
  v.push_back(1);
  v.reserve(128);
}

}  // namespace dnsguard
