// Fixture: MUST FAIL the decode-bounds rule.
//
// The pre-Cursor decode idiom: a raw ByteReader, manual end-offset
// arithmetic via pos()/remaining(), an absolute seek for the compression
// pointer, and a reinterpret_cast straight off the wire buffer. Every one
// of these is a place a malformed packet can walk out of bounds.
#include <cstdint>
#include <string_view>

namespace dns {

struct ByteReader {
  const std::uint8_t* data() const { return nullptr; }
  std::size_t pos() const { return 0; }
  std::size_t remaining() const { return 0; }
  void seek(std::size_t) {}
  std::uint16_t u16() { return 0; }
};

inline std::string_view read_label(ByteReader& r, std::uint8_t len) {
  // Violation: unchecked cast + pointer arithmetic on wire bytes.
  const char* p = reinterpret_cast<const char*>(r.data() + r.pos());
  return std::string_view(p, len);
}

inline bool skip_rdata(ByteReader& r) {
  std::uint16_t rdlength = r.u16();
  // Violation: manual end-offset arithmetic instead of a window.
  std::size_t end = r.pos() + rdlength;
  if (r.remaining() < rdlength) return false;
  r.seek(end);
  return true;
}

}  // namespace dns
