// Fixture: MUST PASS the shard-isolation rule.
//
// A sharded class keeps every piece of per-source mutable state inside the
// nested `struct Shard`, so each lane owns its slice; the one deliberately
// shared member carries a shardsafe annotation, and the only hard-coded
// shard subscript sits in cold setup code the batch path never reaches.
#include <cstdint>
#include <memory>
#include <vector>

namespace common {
template <typename K, typename V>
struct BoundedTable {};
}  // namespace common

namespace dnsguard {

struct TokenLimiter {
  bool admit(std::uint32_t) { return true; }
};

struct Packet {
  std::uint32_t src = 0;
};

class ShardedGuard {
 public:
  void bind_metrics() {
    // Cold path: pin the representative lane for gauge registration.
    probe_ = shards_[0].get();
  }

  void process(const Packet& p) {
    Shard& s = *shards_[p.src % shards_.size()];
    if (!s.rl.admit(p.src) || !aggregate_rl_.admit(0)) drops_++;
  }

 private:
  struct Shard {
    common::BoundedTable<std::uint32_t, std::uint64_t> per_source_;
    TokenLimiter rl;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  Shard* probe_ = nullptr;
  // DNSGUARD_LINT_ALLOW(shardsafe): global ceiling across all lanes by
  // design — it caps the aggregate, the per-shard rl caps each source
  TokenLimiter aggregate_rl_;
  std::uint64_t drops_ = 0;
};

}  // namespace dnsguard
