// Fixture: MUST PASS the bounded-state rule.
//
// Attacker-keyed state lives in common::BoundedTable (capacity-capped, so
// a spoofed flood cannot exhaust memory); the one std::map is keyed by
// operator configuration and carries an annotation saying so.
#include <cstdint>
#include <map>

namespace common {
template <typename K, typename V>
struct BoundedTable {};
}  // namespace common

namespace dnsguard {

struct PerSourceState {
  std::uint64_t packets = 0;
};

struct FloodTarget {
  common::BoundedTable<std::uint32_t, PerSourceState> per_source_;

  // DNSGUARD_LINT_ALLOW(bounded): keyed by operator-configured scheme
  // overrides loaded at startup, never by attacker-influenced input
  std::map<int, int> scheme_overrides_;
};

}  // namespace dnsguard
