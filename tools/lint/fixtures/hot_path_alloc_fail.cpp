// Fixture: MUST FAIL the hot-path-alloc rule.
//
// EventQueue::pop is a registered hot-path root; growing a vector inside
// it is exactly the regression the rule exists to catch (the PR 1 event
// loop recycles slots instead).
#include <vector>

namespace dnsguard {

struct EventQueue {
  void pop();
  std::vector<int> heap_;
};

void EventQueue::pop() {
  heap_.push_back(42);
}

}  // namespace dnsguard
