#!/usr/bin/env python3
"""Regression tests for dnsguard_lint itself.

Each rule has one fixture that must pass and one that must fail; a rule
change that flips any verdict fails this suite. Run directly or via the
`lint_fixtures` CTest entry:

    python3 tools/lint/test_lint_fixtures.py

The fixtures exercise the built-in text front-end (--engine text) so the
verdicts are identical with and without libclang installed; the clang
front-end only sharpens hot-path-alloc call-graph resolution on the real
tree, where compile_commands.json exists.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(HERE, "dnsguard_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# (fixture file, rule, expected exit code under --strict)
CASES = [
    ("hot_path_alloc_pass.cpp", "hot-path-alloc", 0),
    ("hot_path_alloc_fail.cpp", "hot-path-alloc", 1),
    ("drop_reason_pass.cpp", "drop-reason", 0),
    ("drop_reason_fail.cpp", "drop-reason", 1),
    ("bounded_state_pass.cpp", "bounded-state", 0),
    ("bounded_state_fail.cpp", "bounded-state", 1),
    ("sim_time_pass.cpp", "sim-time-purity", 0),
    ("sim_time_fail.cpp", "sim-time-purity", 1),
]


def run_case(fixture, rule, expected):
    path = os.path.join(FIXTURES, fixture)
    proc = subprocess.run(
        [sys.executable, LINT, "--root", ROOT, "--rule", rule,
         "--engine", "text", "--strict", path],
        capture_output=True, text=True)
    ok = proc.returncode == expected
    verdict = "ok" if ok else "FAIL"
    print(f"[{verdict}] {fixture} [{rule}] expected exit {expected}, "
          f"got {proc.returncode}")
    if not ok:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
    return ok


def main():
    missing = [f for f, _, _ in CASES
               if not os.path.isfile(os.path.join(FIXTURES, f))]
    if missing:
        print(f"missing fixtures: {missing}", file=sys.stderr)
        return 2
    failures = sum(0 if run_case(*case) else 1 for case in CASES)
    # The fail fixtures must fail for the right rule only: run each fail
    # fixture's sibling rules and require silence — a rule that fires on
    # another rule's fixture is over-matching.
    print(f"{len(CASES) - failures}/{len(CASES)} fixture verdicts correct")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
