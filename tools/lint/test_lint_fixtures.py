#!/usr/bin/env python3
"""Regression tests for dnsguard_lint itself.

Each rule has one fixture that must pass and one that must fail; a rule
change that flips any verdict fails this suite. Run directly or via the
`lint_fixtures` CTest entry:

    python3 tools/lint/test_lint_fixtures.py

Every fixture is checked against the built-in text front-end
(--engine text), so the verdicts are identical with and without libclang
installed. When the libclang bindings ARE importable, the dataflow rules
(shard-isolation, determinism, decode-bounds) are additionally run under
--engine clang and their verdicts pinned to the text engine's — the two
front-ends feed the same rule core, and this suite is what enforces that
they keep agreeing.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(HERE, "dnsguard_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# Rules whose fixtures are exercised under both front-ends when libclang
# is importable. (hot-path-alloc's clang mode only resolves call graphs
# on the real tree via compile_commands.json, so its fixtures stay
# text-only.)
DUAL_ENGINE_RULES = {"shard-isolation", "determinism", "decode-bounds"}

# (fixture file, rule, expected exit code under --strict)
CASES = [
    ("hot_path_alloc_pass.cpp", "hot-path-alloc", 0),
    ("hot_path_alloc_fail.cpp", "hot-path-alloc", 1),
    ("drop_reason_pass.cpp", "drop-reason", 0),
    ("drop_reason_fail.cpp", "drop-reason", 1),
    ("bounded_state_pass.cpp", "bounded-state", 0),
    ("bounded_state_fail.cpp", "bounded-state", 1),
    ("sim_time_pass.cpp", "sim-time-purity", 0),
    ("sim_time_fail.cpp", "sim-time-purity", 1),
    ("shard_isolation_pass.cpp", "shard-isolation", 0),
    ("shard_isolation_fail.cpp", "shard-isolation", 1),
    ("determinism_pass.cpp", "determinism", 0),
    ("determinism_fail.cpp", "determinism", 1),
    ("decode_bounds_pass.cpp", "decode-bounds", 0),
    ("decode_bounds_fail.cpp", "decode-bounds", 1),
]


def clang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def run_case(fixture, rule, expected, engine):
    path = os.path.join(FIXTURES, fixture)
    proc = subprocess.run(
        [sys.executable, LINT, "--root", ROOT, "--rule", rule,
         "--engine", engine, "--strict", path],
        capture_output=True, text=True)
    ok = proc.returncode == expected
    verdict = "ok" if ok else "FAIL"
    print(f"[{verdict}] {fixture} [{rule}/{engine}] expected exit "
          f"{expected}, got {proc.returncode}")
    if not ok:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
    return ok


def main():
    missing = [f for f, _, _ in CASES
               if not os.path.isfile(os.path.join(FIXTURES, f))]
    if missing:
        print(f"missing fixtures: {missing}", file=sys.stderr)
        return 2
    dual = clang_available()
    runs = []
    for fixture, rule, expected in CASES:
        runs.append((fixture, rule, expected, "text"))
        if dual and rule in DUAL_ENGINE_RULES:
            runs.append((fixture, rule, expected, "clang"))
    failures = sum(0 if run_case(*r) else 1 for r in runs)
    engines = "text+clang" if dual else "text only (libclang not importable)"
    print(f"{len(runs) - failures}/{len(runs)} fixture verdicts correct "
          f"[{engines}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
