#!/usr/bin/env python3
"""dnsguard-lint: project-invariant static analysis for the dnsguard tree.

Seven rules, each guarding an invariant that a previous PR established at
runtime and that ordinary code review keeps failing to protect:

  hot-path-alloc   Functions reachable from the registered hot-path roots
                   (guard cookie verification, EventQueue::pop/run_next,
                   packet encode/deliver/consume) must not allocate:
                   no `new`/`malloc`, no growing std::string/std::vector
                   calls, no std::function construction.
  drop-reason      Every drop site in src/guard, src/tcp, src/ratelimit
                   and src/server must charge a DropReason other than
                   kNone (compile-time extension of the runtime audit in
                   tests/test_anomaly.cpp).
  bounded-state    No std::{unordered_,}map/set keyed by attacker-
                   influenced values in those directories — per-source
                   state must use common::BoundedTable.
  sim-time-purity  No wall-clock reads (std::chrono clocks, ::time,
                   gettimeofday, clock_gettime) anywhere except
                   src/common/time.cpp and bench/bench_common.h.
  shard-isolation  In classes that carry a per-shard `struct Shard`,
                   per-source mutable state (BoundedTable / *Limiter
                   members) must live inside Shard, and functions on the
                   sharded batch path (process / serve_lane / on_batch_*)
                   must not index `shards_` with a hard-coded constant.
                   Deliberately global state carries `shardsafe`.
  determinism      Across src/ and bench/: no rand()/std::random_device,
                   no pointer-value hashing or ordering (uintptr_t casts,
                   pointer-keyed std maps, std::hash<T*>), and no
                   iteration over std::unordered_* containers — the
                   rerun-digest guarantees bench_guard_shards and
                   fig_flashcrowd assert at runtime depend on it.
  decode-bounds    In src/dns/, parse paths over attacker-controlled wire
                   bytes must go through the bounds-checked dns::Cursor:
                   no raw ByteReader, no pos()/seek()/remaining() offset
                   arithmetic, no reinterpret_cast on wire buffers
                   outside cursor.h.

Escape hatch: a finding is suppressed by an annotation comment on the
offending line or one of the two lines above it:

    // DNSGUARD_LINT_ALLOW(<rule>): <reason>

where <rule> is one of alloc, drop, bounded, simtime, shardsafe,
determinism, decode. The reason is mandatory; an annotation without one
is itself a finding. Annotation counts across src/ are budgeted — in
total and per token — by tools/lint/baseline.json so the escape hatch
cannot silently become the default (--check-baseline).

Front-ends: when the python libclang bindings (clang.cindex) and a
libclang shared library are available, the hot-path-alloc call graph is
built from the AST using CMake's compile_commands.json (--compile-commands
or autodetected at build*/compile_commands.json), and the shard-isolation
/ determinism / decode-bounds rules run their shared dataflow core over
libclang's lexer and AST function extents instead of the built-in
tokenizer. Otherwise — including in minimal CI containers — the built-in
lexer front-end computes all rules from tokenized sources; the fixture
suite pins both front-ends to identical verdicts. Force one with
--engine={auto,clang,text}.

Reporting: human-readable findings on stdout, a JSON report via --json,
and SARIF 2.1.0 via --sarif (consumed by the CI static-analysis job for
code annotations). --list-rules enumerates rules; --only=<rule>[,rule]
restricts a run for fast local iteration.

Exit codes: 0 clean, 1 findings (with --strict), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field, asdict

# --------------------------------------------------------------------------
# Shared configuration
# --------------------------------------------------------------------------

RULES = ("hot-path-alloc", "drop-reason", "bounded-state", "sim-time-purity",
         "shard-isolation", "determinism", "decode-bounds")

ALLOW_TOKEN = {
    "hot-path-alloc": "alloc",
    "drop-reason": "drop",
    "bounded-state": "bounded",
    "sim-time-purity": "simtime",
    "shard-isolation": "shardsafe",
    "determinism": "determinism",
    "decode-bounds": "decode",
}

# One-line summaries for --list-rules and the SARIF rule catalog.
RULE_HELP = {
    "hot-path-alloc": ("no allocation in functions reachable from the "
                       "registered hot-path roots"),
    "drop-reason": ("every drop site in attack-surface code charges a "
                    "DropReason other than kNone"),
    "bounded-state": ("attacker-keyed state uses common::BoundedTable, not "
                      "std::{unordered_,}map/set"),
    "sim-time-purity": ("no wall-clock reads outside the sanctioned "
                        "time/profiler/bench files"),
    "shard-isolation": ("per-source state in sharded classes lives inside "
                        "struct Shard; batch-path code never hard-codes a "
                        "shard index"),
    "determinism": ("no rand()/random_device, pointer-value hashing or "
                    "ordering, or std::unordered_* iteration in src/ and "
                    "bench/"),
    "decode-bounds": ("src/dns parse paths use dns::Cursor — no raw "
                      "ByteReader or unchecked offset arithmetic on wire "
                      "bytes"),
}

# Directories whose per-source state and drop bookkeeping are in scope for
# the drop-reason and bounded-state rules (attacker-facing subsystems).
ATTACK_SURFACE_DIRS = ("src/guard", "src/tcp", "src/ratelimit", "src/server")

# The hot-path root set: functions whose transitive callees must stay
# allocation-free. Matched against qualified names ("Class::name"); a
# trailing '*' is a prefix wildcard.
HOT_PATH_ROOTS = (
    "EventQueue::schedule",
    "EventQueue::pop",
    "EventQueue::run_next",
    "CookieEngine::verify*",
    "SynCookieGenerator::validate",
    "DropCounters::count",
    "TokenBucket::try_consume",
    "Packet::release_payload",
    "Node::deliver",
    # Shard service path: ring transfer, batched MD5, and table prefetch
    # all run once per packet (or per burst) inside serve_lane.
    "SpscRing::try_push",
    "SpscRing::try_pop",
    "CookieHasher::compute",
    "BoundedTable::prefetch",
    "Node::maybe_schedule_lane",
    "Node::flush_outbox_at",
    # Wall-clock profiler probes (obs/profiler.h): a probe fires inside
    # every hot-path root above, so the probes themselves must stay
    # allocation-free. Profiler::enable()/report() are cold and excluded.
    "Profiler::span_begin",
    "Profiler::span_end",
    "Profiler::record",
    "Scope::Scope",
    "Scope::~Scope",
    "DispatchWindow::tick",
)

# Callee names never followed and never flagged (std/builtin vocabulary the
# tokenizer would otherwise resolve to unrelated project functions).
CALL_IGNORE = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "static_assert", "assert", "defined", "decltype", "noexcept",
    "size", "empty", "begin", "end", "data", "value", "reset", "get",
    "front", "back", "first", "second", "count", "min", "max", "swap",
    "move", "forward", "find", "erase", "clear", "contains", "at",
}

# Direct allocation constructs (regexes over comment/string-stripped code).
ALLOC_PATTERNS = (
    (r"\bnew\b(?!\s*\()", "operator new"),
    (r"\b(?:malloc|calloc|realloc|strdup)\s*\(", "C allocation"),
    (r"\bstd::make_(?:unique|shared)\b", "std::make_unique/make_shared"),
    (r"\.\s*push_back\s*\(", "vector/string growth (push_back)"),
    (r"\.\s*emplace_back\s*\(", "vector growth (emplace_back)"),
    (r"\.\s*emplace\s*\(", "container growth (emplace)"),
    (r"\.\s*resize\s*\(", "container growth (resize)"),
    (r"\.\s*reserve\s*\(", "container growth (reserve)"),
    (r"\.\s*append\s*\(", "string growth (append)"),
    (r"\.\s*substr\s*\(", "string allocation (substr)"),
    (r"\bstd::to_string\s*\(", "string allocation (to_string)"),
    (r"\bstd::string\s*[({]", "std::string construction"),
    (r"\bstd::function\s*<", "std::function construction"),
)

# Wall-clock constructs and their sanctioned homes.
TIME_PATTERNS = (
    r"\bstd::chrono::system_clock\b",
    r"\bstd::chrono::steady_clock\b",
    r"\bstd::chrono::high_resolution_clock\b",
    r"\bgettimeofday\s*\(",
    r"\bclock_gettime\s*\(",
    r"(?<![\w:.])::time\s*\(",
    r"(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)\s*\)",
)
# Sim-time-purity allowlist. Everything under src/ must run on the sim
# clock except:
#   * src/common/time.cpp — the sim clock's own formatting helpers.
#   * bench/bench_common.h — benches measure host throughput by design.
#   * src/obs/profiler.{h,cpp} — the wall-clock cost-attribution profiler
#     *is* a host-time instrument: profiler.h reads the TSC (steady_clock
#     on non-x86), profiler.cpp calibrates ticks against steady_clock.
#     Attributing wall time is its whole purpose, so the exemption lives
#     here as a documented allowlist entry, not as inline suppressions.
TIME_EXEMPT_FILES = (
    "src/common/time.cpp",
    "bench/bench_common.h",
    "src/obs/profiler.h",
    "src/obs/profiler.cpp",
)

# Counter names whose increment marks a drop decision and therefore needs a
# DropReason charged in the surrounding statement window.
DROPPISH_COUNTER = re.compile(
    r"\b\w*(?:dropped|throttled|rejected|malformed|refused)\w*\s*"
    r"(?:\+\+|\.inc\s*\(|\+=)"
)
DROP_COUNT_CALL = re.compile(r"\bdrops_?\s*(?:\.|->)\s*count\s*\(")
DROP_REASON_USE = re.compile(r"\bDropReason::k(?!None\b)\w+")
DROP_REASON_NONE = re.compile(r"\bDropReason::kNone\b")
SEND_RST_CALL = re.compile(r"\bsend_rst\s*\(")
# A DropReason-typed parameter in the enclosing function signature also
# satisfies the rule (drop_spoof/drop_other style helpers charge a reason
# the caller chose).
DROP_REASON_PARAM = re.compile(r"(?:obs::)?DropReason\s+\w+")
DROP_WINDOW = 4  # lines of context around a drop site that may carry the reason

STD_CONTAINER_DECL = re.compile(
    r"\bstd::(unordered_map|unordered_set|map|set)\s*<")

# --- shard-isolation -------------------------------------------------------
# A class is "sharded" when it nests a `struct Shard`. Per-source state
# types that must live inside it: BoundedTable instantiations and the
# rate-limiter classes (but not their nested ::Config types, which are
# plain parameter blocks).
SHARD_STRUCT_RE = re.compile(r"\bstruct\s+Shard\s*\{")
SHARD_PER_SOURCE_DECL = re.compile(
    r"(?:\w+::)*(?:BoundedTable\s*<[^;]*?>|\w+Limiter(?!\s*::))"
    r"\s+(\w+)\s*(?:\{[^;]*\})?;")
# Hard-coded shard subscripts (`shards_[0]`) are fine in cold setup code
# but a cross-shard leak on the batch path.
SHARD_LITERAL_INDEX = re.compile(r"\bshards_\s*\[\s*\d+\s*\]")
# Functions whose bodies (and transitive callees) form the sharded batch
# path: the per-packet service entry and the batch hooks.
SHARD_BATCH_ROOTS = ("process", "serve_lane", "on_batch_begin",
                     "on_batch_end")

# --- determinism -----------------------------------------------------------
DETERMINISM_PATTERNS = (
    (r"(?<![\w:.])(?:rand|srand)\s*\(",
     "libc rand()/srand() — use the seeded common::Rng"),
    (r"\b(?:drand48|lrand48|mrand48|rand_r)\s*\(",
     "libc PRNG — use the seeded common::Rng"),
    (r"\bstd::random_device\b",
     "std::random_device draws entropy from the host — use a fixed seed"),
    (r"\breinterpret_cast\s*<\s*std::uintptr_t\s*>",
     "pointer value converted to an integer — pointer-derived keys/order "
     "vary per run; key on a stable id instead"),
    (r"\bstd::hash\s*<\s*[\w:]+\s*\*\s*>",
     "std::hash over a pointer type — hashes vary with heap layout"),
    (r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
     r"[\w:]+\s*\*\s*[,>]",
     "pointer-keyed container — iteration/lookup order varies with heap "
     "layout; key on a stable id instead"),
)
# Declared-unordered container names -> later iteration over them.
UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"(\w+)\s*[;{=(]")
RANGE_FOR_OVER = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:\w+\s*\.\s*)?(\w+)\s*\)")
BEGIN_CALL_ON = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")

# --- decode-bounds ---------------------------------------------------------
# Inside src/dns/, everything positional must go through dns::Cursor
# (cursor.h itself is the sanctioned implementation and is exempt).
DECODE_SANCTIONED_FILES = ("src/dns/cursor.h",)
DECODE_PATTERNS = (
    (r"\bByteReader\b",
     "raw ByteReader over wire bytes — decode paths must use dns::Cursor"),
    (r"\breinterpret_cast\b",
     "reinterpret_cast on wire data — only dns::Cursor::chars() may "
     "convert wire octets"),
    (r"\.\s*pos\s*\(\s*\)",
     "cursor-position arithmetic — use Cursor windows "
     "(push_window/at_limit) instead of comparing offsets"),
    (r"\.\s*seek\s*\(",
     "absolute seek — use Cursor::jump_back()/resume() for compression "
     "pointers"),
    (r"\.\s*remaining\s*\(",
     "remaining-byte arithmetic — use Cursor::push_window() for length-"
     "prefixed fields"),
    (r"\.\s*data\s*\(\s*\)\s*[+\-]",
     "raw pointer arithmetic on a wire buffer"),
)

ALLOW_RE = re.compile(
    r"//\s*DNSGUARD_LINT_ALLOW\("
    r"(alloc|drop|bounded|simtime|shardsafe|determinism|decode)"
    r"\)\s*(?::\s*(.*))?")
NOLINT_RE = re.compile(r"//\s*NOLINT")

CPP_EXTS = (".cpp", ".h", ".cc", ".hpp")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    context: str = ""
    allowed: bool = False  # suppressed by a DNSGUARD_LINT_ALLOW annotation

    def format(self) -> str:
        tag = "allowed" if self.allowed else "error"
        return f"{self.file}:{self.line}: [{self.rule}] {tag}: {self.message}"


@dataclass
class SourceFile:
    path: str          # repo-relative, forward slashes
    raw_lines: list = field(default_factory=list)
    code_lines: list = field(default_factory=list)  # comments/strings blanked
    allows: dict = field(default_factory=dict)      # line -> (token, reason)


# --------------------------------------------------------------------------
# Lexing helpers (shared by the text front-end and the fixture tests)
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    (and preserving the DNSGUARD_LINT_ALLOW/NOLINT markers, which live in
    comments but are meaningful to the linter)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            if "DNSGUARD_LINT_ALLOW" in comment or "NOLINT" in comment:
                out.append(comment)
            else:
                out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "'" and i > 0 and text[i - 1].isalnum() and nxt.isalnum():
            # C++14 digit separator (1'000'000), not a char literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q and text[j] != "\n":
                j += 2 if text[j] == "\\" else 1
            closed = j < n and text[j] == q
            out.append(q + " " * max(0, j - i - 1) + (q if closed else ""))
            i = j + 1 if closed else j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_source(root: str, rel: str) -> SourceFile:
    abspath = os.path.join(root, rel)
    with open(abspath, encoding="utf-8", errors="replace") as f:
        text = f.read()
    sf = SourceFile(path=rel.replace(os.sep, "/"))
    sf.raw_lines = text.splitlines()
    sf.code_lines = strip_comments_and_strings(text).splitlines()
    for idx, line in enumerate(sf.raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            sf.allows[idx] = (m.group(1), (m.group(2) or "").strip())
    return sf


def allow_covers(sf: SourceFile, line: int, token: str) -> bool:
    """An annotation covers its own line, the line directly after it, and
    — when it heads a comment block — the first code line below that
    block. So both of these are covered:

        x = grow();  // DNSGUARD_LINT_ALLOW(alloc): reason
        // DNSGUARD_LINT_ALLOW(alloc): reason spanning
        // several comment lines
        x = grow();
    """
    for probe in (line, line - 1):
        entry = sf.allows.get(probe)
        if entry and entry[0] == token:
            return True
    lno = line - 1
    while lno > 0 and lno <= len(sf.raw_lines):
        if sf.raw_lines[lno - 1].lstrip().startswith("//"):
            entry = sf.allows.get(lno)
            if entry and entry[0] == token:
                return True
            lno -= 1
            continue
        break
    return False


# --------------------------------------------------------------------------
# Text front-end: function extraction + name-based call graph
# --------------------------------------------------------------------------

FUNC_DEF = re.compile(
    r"""(?:^|[;}\s])
        (?P<qual>(?:[A-Za-z_]\w*::)*)          # optional Class:: scope
        (?P<name>~?[A-Za-z_]\w*)\s*
        \((?P<args>[^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*
        (?:const\s*|noexcept\s*|override\s*|final\s*|->\s*[\w:<>,&*\s]+)*
        \{""",
    re.VERBOSE,
)

KEYWORD_NONFUNC = {
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "new", "delete", "sizeof", "alignas", "alignof", "case", "default",
}

CALL_SITE = re.compile(r"(?<![.>\w:])([A-Za-z_]\w*)\s*\(")
METHOD_CALL_SITE = re.compile(r"(?:\.|->|::)\s*([A-Za-z_]\w*)\s*\(")


@dataclass
class FunctionDef:
    qualified: str     # e.g. "EventQueue::pop" or "scheme_name"
    name: str          # unqualified tail
    file: str
    start_line: int    # line of the opening brace match start
    end_line: int
    body: str          # code-stripped body text (between braces)


def extract_functions(sf: SourceFile) -> list:
    """Heuristic function-definition extractor over stripped code. Good
    enough for this codebase's clang-format-enforced style; the clang
    front-end replaces it when libclang is available."""
    text = "\n".join(sf.code_lines)
    line_of = _line_index(text)
    funcs = []
    for m in FUNC_DEF.finditer(text):
        name = m.group("name")
        if name in KEYWORD_NONFUNC:
            continue
        qual = (m.group("qual") or "").rstrip(":")
        # Reject control-flow false positives: `= [...] {`, `struct X {`.
        open_idx = m.end() - 1
        body_end = _match_brace(text, open_idx)
        if body_end == -1:
            continue
        # Class name context: walk back for "ClassName::" already captured;
        # nested in-class definitions just get the unqualified name.
        qualified = f"{qual}::{name}" if qual else name
        funcs.append(FunctionDef(
            qualified=qualified,
            name=name,
            file=sf.path,
            start_line=line_of(m.start()),
            end_line=line_of(body_end),
            body=text[open_idx + 1:body_end],
        ))
    return funcs


def _match_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _line_index(text: str):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)

    def line_of(pos: int) -> int:
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    return line_of


def calls_of(fn: FunctionDef) -> set:
    names = set()
    for m in CALL_SITE.finditer(fn.body):
        names.add(m.group(1))
    for m in METHOD_CALL_SITE.finditer(fn.body):
        names.add(m.group(1))
    return {n for n in names if n not in CALL_IGNORE and n not in KEYWORD_NONFUNC}


def root_matches(qualified: str, name: str, roots) -> bool:
    for r in roots:
        if r.endswith("*"):
            if qualified.startswith(r[:-1]) or name.startswith(r[:-1].split("::")[-1]):
                return True
        elif qualified == r or (("::" not in r) and name == r):
            return True
    return False


# --------------------------------------------------------------------------
# Rule: hot-path-alloc (text engine)
# --------------------------------------------------------------------------

def check_hot_path_alloc(sources, roots=HOT_PATH_ROOTS, max_depth=3):
    """BFS over the name-resolved call graph from the hot-path roots;
    every reached function is scanned for direct allocation constructs.
    Depth is bounded (default 3) because name-based resolution loses
    precision with distance; the clang engine raises it."""
    by_name: dict = {}
    all_funcs = []
    func_src: dict = {}
    for sf in sources:
        if not (sf.path.startswith("src/") or _is_fixture(sf.path)):
            continue
        for fn in extract_functions(sf):
            by_name.setdefault(fn.name, []).append(fn)
            all_funcs.append(fn)
            func_src[id(fn)] = sf

    # Seed with roots.
    work = [(fn, 0, fn.qualified)
            for fn in all_funcs if root_matches(fn.qualified, fn.name, roots)]
    seen = {id(fn) for fn, _, _ in work}
    findings = []
    while work:
        fn, depth, path = work.pop()
        sf = func_src[id(fn)]
        findings.extend(_scan_alloc(fn, sf, path))
        if depth >= max_depth:
            continue
        for callee in calls_of(fn):
            defs = by_name.get(callee, [])
            # Name-based resolution: only follow unambiguous project
            # functions (a name defined once, or methods of one class).
            if not defs or len({d.qualified for d in defs}) > 1:
                continue
            for d in defs:
                if id(d) not in seen:
                    seen.add(id(d))
                    work.append((d, depth + 1, f"{path} -> {d.qualified}"))
    return findings


def _scan_alloc(fn: FunctionDef, sf: SourceFile, path: str):
    findings = []
    for off, line in enumerate(fn.body.splitlines()):
        lineno = fn.start_line + off  # body starts on the brace line
        for pat, what in ALLOC_PATTERNS:
            if re.search(pat, line):
                findings.append(Finding(
                    rule="hot-path-alloc",
                    file=sf.path,
                    line=lineno,
                    message=(f"{what} in hot-path function "
                             f"'{fn.qualified}' (reachable via {path})"),
                    context=sf.raw_lines[lineno - 1].strip()
                    if lineno <= len(sf.raw_lines) else "",
                    allowed=allow_covers(sf, lineno, "alloc"),
                ))
    return findings


# --------------------------------------------------------------------------
# Rule: drop-reason
# --------------------------------------------------------------------------

def _is_fixture(path: str) -> bool:
    return "tools/lint/fixtures/" in path or path.startswith("fixtures/")


def _in_scope(path: str, scope_dirs=ATTACK_SURFACE_DIRS) -> bool:
    if _is_fixture(path):
        return True
    return any(path.startswith(d + "/") or path == d for d in scope_dirs)


def check_drop_reason(sources, scope_dirs=ATTACK_SURFACE_DIRS):
    findings = []
    for sf in sources:
        if not _in_scope(sf.path, scope_dirs):
            continue
        funcs = extract_functions(sf) if sf.path.endswith(CPP_EXTS) else []
        reason_param_spans = []
        for fn in funcs:
            # Signature text: the raw line(s) right before the body.
            sig_line = sf.raw_lines[fn.start_line - 1] if \
                fn.start_line <= len(sf.raw_lines) else ""
            sig = " ".join(sf.code_lines[max(0, fn.start_line - 3):fn.start_line])
            if DROP_REASON_PARAM.search(sig) or DROP_REASON_PARAM.search(sig_line):
                reason_param_spans.append((fn.start_line, fn.end_line))

        def has_reason_param(lineno: int) -> bool:
            return any(a <= lineno <= b for a, b in reason_param_spans)

        for idx, line in enumerate(sf.code_lines, start=1):
            window = "\n".join(
                sf.code_lines[max(0, idx - 1 - DROP_WINDOW):idx + DROP_WINDOW])

            if DROP_REASON_NONE.search(line) and DROP_COUNT_CALL.search(line):
                findings.append(Finding(
                    rule="drop-reason", file=sf.path, line=idx,
                    message="drop charged to DropReason::kNone",
                    context=sf.raw_lines[idx - 1].strip(),
                    allowed=allow_covers(sf, idx, "drop")))
                continue

            hit = None
            if DROPPISH_COUNTER.search(line):
                hit = "drop-classed counter incremented"
            elif SEND_RST_CALL.search(line) and not re.search(
                    r"\bvoid\b[^;()]*send_rst", line):
                # (the `void ... send_rst(...)` form is the declaration or
                # definition of the helper itself, not a drop site)
                hit = "RST emitted (segment discarded)"
            elif DROP_COUNT_CALL.search(line) and not (
                    DROP_REASON_USE.search(line) or has_reason_param(idx)):
                hit = "DropCounters::count() call"
            if hit is None:
                continue
            if (DROP_REASON_USE.search(window)
                    or DROP_COUNT_CALL.search(window)
                    or has_reason_param(idx)):
                continue
            findings.append(Finding(
                rule="drop-reason", file=sf.path, line=idx,
                message=(f"{hit} without a DropReason charged within "
                         f"{DROP_WINDOW} lines"),
                context=sf.raw_lines[idx - 1].strip(),
                allowed=allow_covers(sf, idx, "drop")))
    return findings


# --------------------------------------------------------------------------
# Rule: bounded-state
# --------------------------------------------------------------------------

def check_bounded_state(sources, scope_dirs=ATTACK_SURFACE_DIRS):
    findings = []
    for sf in sources:
        if not _in_scope(sf.path, scope_dirs):
            continue
        for idx, line in enumerate(sf.code_lines, start=1):
            raw = sf.raw_lines[idx - 1] if idx <= len(sf.raw_lines) else ""
            if "#include" in raw:
                continue
            m = STD_CONTAINER_DECL.search(line)
            if not m:
                continue
            # Declaration heuristic: using/typedef/member/local declaration,
            # not a template parameter mention inside another type.
            findings.append(Finding(
                rule="bounded-state", file=sf.path, line=idx,
                message=(f"std::{m.group(1)} in attack-surface code — "
                         "attacker-keyed state must use common::BoundedTable "
                         "(annotate benign config/zone-keyed tables)"),
                context=sf.raw_lines[idx - 1].strip(),
                allowed=allow_covers(sf, idx, "bounded")))
    return findings


# --------------------------------------------------------------------------
# Rule: sim-time-purity
# --------------------------------------------------------------------------

def check_sim_time(sources, exempt=TIME_EXEMPT_FILES):
    findings = []
    for sf in sources:
        if sf.path in exempt:
            continue
        if not (sf.path.startswith("src/") or sf.path.startswith("bench/")
                or sf.path.startswith("examples/")
                or sf.path.startswith("tools/lint/fixtures/")):
            continue
        for idx, line in enumerate(sf.code_lines, start=1):
            for pat in TIME_PATTERNS:
                if re.search(pat, line):
                    findings.append(Finding(
                        rule="sim-time-purity", file=sf.path, line=idx,
                        message=("wall-clock read outside "
                                 "src/common/time.cpp / bench/bench_common.h "
                                 "— simulation code must use the sim clock"),
                        context=sf.raw_lines[idx - 1].strip(),
                        allowed=allow_covers(sf, idx, "simtime")))
                    break
    return findings


# --------------------------------------------------------------------------
# Front-end seam for the dataflow rules
# --------------------------------------------------------------------------
# The shard-isolation / determinism / decode-bounds rules run one shared
# dataflow core (unit grouping, Shard spans, batch-path BFS, two-pass
# container tracking) over a front-end that supplies comment/string-free
# code lines and function extents. TextFrontend is the built-in lexer;
# try_clang_frontend() (further down) swaps in libclang's lexer and AST
# extents when available. Sharing the core is what keeps the two engines
# verdict-pinned.

class TextFrontend:
    name = "text"

    def view(self, sf: SourceFile) -> SourceFile:
        return sf

    def functions(self, sf: SourceFile) -> list:
        return extract_functions(sf)


TEXT_FRONTEND = TextFrontend()


def _unit_key(path: str):
    """Files of one class (foo.h + foo.cpp in the same directory) form one
    analysis unit; name resolution never crosses units, so `process` in
    remote_guard.cpp cannot alias `process` in some other node class."""
    base = os.path.basename(path)
    stem = base.rsplit(".", 1)[0]
    return (os.path.dirname(path), stem)


def _group_units(sources) -> dict:
    units: dict = {}
    for sf in sources:
        units.setdefault(_unit_key(sf.path), []).append(sf)
    return units


# --------------------------------------------------------------------------
# Rule: shard-isolation
# --------------------------------------------------------------------------

def check_shard_isolation(sources, frontend=None):
    """Two complementary checks over every unit that nests a
    `struct Shard`:

      1. declaration-level: per-source state types (BoundedTable, the
         *Limiter classes) declared outside the Shard struct are findings
         — shared mutable state the sharded batch path could touch. The
         shardsafe annotation marks deliberately global members (the TCP
         framer table, a cookie key schedule).
      2. batch-path dataflow: BFS over the unit's call graph from the
         batch roots (process / serve_lane / on_batch_*); any function
         reached may not index `shards_` with a hard-coded constant —
         cold setup code (constructors, bind_metrics) legitimately pins
         shard 0, but on the batch path that is a cross-shard leak."""
    fe = frontend or TEXT_FRONTEND
    findings = []
    for _, unit in sorted(_group_units(sources).items()):
        if not all(sf.path.startswith("src/") or _is_fixture(sf.path)
                   for sf in unit):
            continue
        views = {sf.path: fe.view(sf) for sf in unit}

        # Pass 0: locate Shard struct spans; a unit without one is not a
        # sharded class and is out of scope.
        spans: dict = {}
        for sf in unit:
            text = "\n".join(views[sf.path].code_lines)
            line_of = _line_index(text)
            for m in SHARD_STRUCT_RE.finditer(text):
                end = _match_brace(text, m.end() - 1)
                end_line = line_of(end) if end != -1 else len(sf.raw_lines)
                spans.setdefault(sf.path, []).append(
                    (line_of(m.start()), end_line))
        if not spans:
            continue

        # Pass 1: per-source state declared outside the Shard spans.
        for sf in unit:
            text = "\n".join(views[sf.path].code_lines)
            line_of = _line_index(text)
            for m in SHARD_PER_SOURCE_DECL.finditer(text):
                lineno = line_of(m.start(1))
                if any(a <= lineno <= b for a, b in spans.get(sf.path, [])):
                    continue
                findings.append(Finding(
                    rule="shard-isolation", file=sf.path, line=lineno,
                    message=(f"per-source state '{m.group(1)}' declared "
                             "outside the per-shard Shard struct — move it "
                             "into Shard so each lane owns its slice, or "
                             "annotate shardsafe for deliberately shared "
                             "state"),
                    context=sf.raw_lines[lineno - 1].strip()
                    if lineno <= len(sf.raw_lines) else "",
                    allowed=allow_covers(sf, lineno, "shardsafe")))

        # Pass 2: batch-path BFS; hard-coded shard indexing in any
        # reached function.
        by_name: dict = {}
        src_of: dict = {}
        roots = []
        for sf in unit:
            for fn in fe.functions(views[sf.path]):
                by_name.setdefault(fn.name, []).append(fn)
                src_of[id(fn)] = sf
                if fn.name in SHARD_BATCH_ROOTS:
                    roots.append(fn)
        work = list(roots)
        seen = {id(fn) for fn in work}
        while work:
            fn = work.pop()
            sf = src_of[id(fn)]
            for off, line in enumerate(fn.body.splitlines()):
                lineno = fn.start_line + off  # body starts on the brace line
                if SHARD_LITERAL_INDEX.search(line):
                    findings.append(Finding(
                        rule="shard-isolation", file=sf.path, line=lineno,
                        message=(f"hard-coded shard index in '{fn.qualified}'"
                                 " on the sharded batch path — use the lane "
                                 "index or cur_shard_; a constant subscript "
                                 "reads another lane's state"),
                        context=sf.raw_lines[lineno - 1].strip()
                        if lineno <= len(sf.raw_lines) else "",
                        allowed=allow_covers(sf, lineno, "shardsafe")))
            for callee in calls_of(fn):
                for d in by_name.get(callee, []):
                    if id(d) not in seen:
                        seen.add(id(d))
                        work.append(d)
    return findings


# --------------------------------------------------------------------------
# Rule: determinism
# --------------------------------------------------------------------------

def check_determinism(sources, frontend=None):
    """Nondeterminism sources across src/ and bench/: host entropy,
    pointer-value keys/order, and iteration over std::unordered_*
    containers. Iteration tracking is two-pass within an analysis unit:
    collect names declared as unordered containers, then flag range-for /
    .begin() traversal of those names. Lookup-only use (find/count/[]) is
    deterministic and stays legal."""
    fe = frontend or TEXT_FRONTEND
    scoped = [sf for sf in sources
              if sf.path.startswith(("src/", "bench/")) or
              _is_fixture(sf.path)]
    findings = []
    views = {sf.path: fe.view(sf) for sf in scoped}

    for sf in scoped:
        for idx, line in enumerate(views[sf.path].code_lines, start=1):
            for pat, why in DETERMINISM_PATTERNS:
                if re.search(pat, line):
                    findings.append(Finding(
                        rule="determinism", file=sf.path, line=idx,
                        message=why,
                        context=sf.raw_lines[idx - 1].strip()
                        if idx <= len(sf.raw_lines) else "",
                        allowed=allow_covers(sf, idx, "determinism")))
                    break

    for _, unit in sorted(_group_units(scoped).items()):
        unordered = set()
        for sf in unit:
            text = "\n".join(views[sf.path].code_lines)
            for m in UNORDERED_DECL.finditer(text):
                unordered.add(m.group(1))
        if not unordered:
            continue
        for sf in unit:
            for idx, line in enumerate(views[sf.path].code_lines, start=1):
                for rex in (RANGE_FOR_OVER, BEGIN_CALL_ON):
                    m = rex.search(line)
                    if m and m.group(1) in unordered:
                        findings.append(Finding(
                            rule="determinism", file=sf.path, line=idx,
                            message=(f"iteration over std::unordered_* "
                                     f"'{m.group(1)}' — bucket order varies "
                                     "across libraries and runs; iterate a "
                                     "registration-ordered vector or sort "
                                     "first"),
                            context=sf.raw_lines[idx - 1].strip()
                            if idx <= len(sf.raw_lines) else "",
                            allowed=allow_covers(sf, idx, "determinism")))
                        break
    return findings


# --------------------------------------------------------------------------
# Rule: decode-bounds
# --------------------------------------------------------------------------

def check_decode_bounds(sources, frontend=None):
    """src/dns parses attacker bytes; all positional reasoning must live
    in dns::Cursor (cursor.h — the sanctioned, exempt implementation).
    Everything else in the directory is banned from raw ByteReader use,
    offset arithmetic (pos/seek/remaining), reinterpret_cast, and pointer
    arithmetic on buffer data."""
    fe = frontend or TEXT_FRONTEND
    findings = []
    for sf in sources:
        if not (sf.path.startswith("src/dns/") or _is_fixture(sf.path)):
            continue
        if sf.path in DECODE_SANCTIONED_FILES:
            continue
        v = fe.view(sf)
        for idx, line in enumerate(v.code_lines, start=1):
            for pat, why in DECODE_PATTERNS:
                if re.search(pat, line):
                    findings.append(Finding(
                        rule="decode-bounds", file=sf.path, line=idx,
                        message=why,
                        context=sf.raw_lines[idx - 1].strip()
                        if idx <= len(sf.raw_lines) else "",
                        allowed=allow_covers(sf, idx, "decode")))
                    break
    return findings


# --------------------------------------------------------------------------
# Annotation audit (reasons mandatory; budget vs baseline.json)
# --------------------------------------------------------------------------

def check_annotations(sources):
    findings = []
    for sf in sources:
        for lineno, (token, reason) in sorted(sf.allows.items()):
            if not reason:
                findings.append(Finding(
                    rule="annotation", file=sf.path, line=lineno,
                    message=(f"DNSGUARD_LINT_ALLOW({token}) without a reason "
                             "— the justification is the contract"),
                    context=sf.raw_lines[lineno - 1].strip()))
    return findings


def count_annotations(sources):
    allow_total = 0
    nolint_total = 0
    per_file = {}
    by_token = {token: 0 for token in ALLOW_TOKEN.values()}
    for sf in sources:
        if not sf.path.startswith("src/"):
            continue
        a = len(sf.allows)
        n = sum(1 for line in sf.raw_lines if NOLINT_RE.search(line))
        for token, _reason in sf.allows.values():
            by_token[token] = by_token.get(token, 0) + 1
        if a or n:
            per_file[sf.path] = {"allow": a, "nolint": n}
        allow_total += a
        nolint_total += n
    return {"allow_total": allow_total, "nolint_total": nolint_total,
            "allow_by_token": by_token, "per_file": per_file}


def check_baseline(counts, baseline_path):
    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [Finding(rule="annotation-budget", file=baseline_path, line=1,
                        message=f"unreadable baseline: {e}")]
    findings = []
    for key in ("allow_total", "nolint_total"):
        have = counts[key]
        budget = baseline.get(key, 0)
        if have > budget:
            findings.append(Finding(
                rule="annotation-budget", file=baseline_path, line=1,
                message=(f"{key} grew to {have} (budget {budget}) — update "
                         "tools/lint/baseline.json in the same commit to "
                         "acknowledge the new annotation")))
    # Per-token budgets: each escape hatch is budgeted separately, so a
    # surge of (say) decode annotations can't hide inside headroom the
    # alloc budget happens to have.
    token_budgets = baseline.get("allow_by_token", {})
    for token, have in sorted(counts["allow_by_token"].items()):
        budget = token_budgets.get(token, 0)
        if have > budget:
            findings.append(Finding(
                rule="annotation-budget", file=baseline_path, line=1,
                message=(f"ALLOW({token}) grew to {have} (budget {budget}) "
                         "— update allow_by_token in tools/lint/"
                         "baseline.json in the same commit")))
    return findings


# --------------------------------------------------------------------------
# SARIF 2.1.0 emitter (CI code annotations)
# --------------------------------------------------------------------------

def to_sarif(findings, rules_run, engine_name):
    """One SARIF run: the rule catalog (every rule that ran plus any
    synthetic rules that fired, e.g. annotation-budget), and one result
    per finding. Annotated findings are emitted at `note` level with an
    inSource suppression so viewers show them as suppressed rather than
    hiding them."""
    rule_ids = sorted(set(rules_run) | {f.rule for f in findings})
    results = []
    for f in sorted(findings, key=lambda f: (f.file, f.line, f.rule)):
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_ids.index(f.rule),
            "level": "note" if f.allowed else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.file,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.context:
            result["locations"][0]["physicalLocation"]["region"]["snippet"] \
                = {"text": f.context}
        if f.allowed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": "DNSGUARD_LINT_ALLOW annotation",
            }]
        results.append(result)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "dnsguard-lint",
                "informationUri":
                    "https://github.com/dnsguard/dnsguard/blob/main/docs/"
                    "STATIC_ANALYSIS.md",
                "semanticVersion": "2.0.0",
                "properties": {"engine": engine_name},
                "rules": [{
                    "id": rid,
                    "shortDescription": {
                        "text": RULE_HELP.get(
                            rid, "dnsguard-lint internal check")},
                } for rid in rule_ids],
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


# --------------------------------------------------------------------------
# Optional clang front-end (hot-path-alloc precision)
# --------------------------------------------------------------------------

def try_clang_engine(root, compile_commands):
    """Returns a callable with the check_hot_path_alloc signature, or None
    when libclang is unavailable. The clang engine builds the call graph
    from the AST (qualified names, overload-resolved), so it follows calls
    the text engine's unique-name heuristic must skip."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None

    def engine(sources, roots=HOT_PATH_ROOTS, max_depth=6):
        from clang.cindex import CursorKind
        db = None
        if compile_commands and os.path.isdir(os.path.dirname(compile_commands)):
            try:
                db = cindex.CompilationDatabase.fromDirectory(
                    os.path.dirname(compile_commands))
            except cindex.CompilationDatabaseError:
                db = None

        defs = {}        # USR -> (cursor extent info, qualified name)
        callees = {}     # USR -> set(USR)
        alloc_sites = {}  # USR -> [(file, line, what)]
        src_paths = {os.path.join(root, sf.path) for sf in sources
                     if sf.path.startswith("src/")}

        def qualified_name(cur):
            parts = []
            c = cur
            while c is not None and c.kind != CursorKind.TRANSLATION_UNIT:
                if c.spelling:
                    parts.append(c.spelling)
                c = c.semantic_parent
            return "::".join(reversed(parts[:2]))  # Class::name at most

        def args_for(path):
            base = ["-std=c++20", f"-I{os.path.join(root, 'src')}"]
            if db is None:
                return base
            cmds = db.getCompileCommands(path)
            if not cmds:
                return base
            out = []
            it = iter(list(cmds[0].arguments)[1:-1])
            for a in it:
                if a in ("-c", "-o"):
                    next(it, None)
                    continue
                out.append(a)
            return out or base

        for path in sorted(src_paths):
            if not path.endswith(".cpp"):
                continue
            try:
                tu = index.parse(path, args=args_for(path))
            except cindex.TranslationUnitLoadError:
                continue

            def visit(cur, current=None):
                if cur.kind in (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                                CursorKind.CONSTRUCTOR) and cur.is_definition():
                    current = cur.get_usr()
                    defs[current] = (cur.location.file.name if cur.location.file
                                     else path, cur.location.line,
                                     qualified_name(cur))
                    callees.setdefault(current, set())
                    alloc_sites.setdefault(current, [])
                if current is not None:
                    if cur.kind == CursorKind.CALL_EXPR:
                        ref = cur.referenced
                        if ref is not None:
                            callees[current].add(ref.get_usr())
                            nm = ref.spelling or ""
                            if nm in ("malloc", "calloc", "realloc", "strdup",
                                      "push_back", "emplace_back", "emplace",
                                      "resize", "reserve", "append", "substr",
                                      "to_string", "make_unique", "make_shared"):
                                loc = cur.location
                                alloc_sites[current].append(
                                    (loc.file.name if loc.file else path,
                                     loc.line, f"allocating call '{nm}'"))
                    elif cur.kind == CursorKind.CXX_NEW_EXPR:
                        loc = cur.location
                        alloc_sites[current].append(
                            (loc.file.name if loc.file else path, loc.line,
                             "operator new"))
                for child in cur.get_children():
                    visit(child, current)

            visit(tu.cursor)

        by_path = {os.path.join(root, sf.path): sf for sf in sources}
        work = [(usr, 0, info[2]) for usr, info in defs.items()
                if root_matches(info[2], info[2].split("::")[-1], roots)]
        seen = {usr for usr, _, _ in work}
        findings = []
        while work:
            usr, depth, trail = work.pop()
            for fpath, line, what in alloc_sites.get(usr, []):
                sf = by_path.get(os.path.abspath(fpath)) or by_path.get(fpath)
                rel = sf.path if sf else os.path.relpath(fpath, root)
                findings.append(Finding(
                    rule="hot-path-alloc", file=rel, line=line,
                    message=f"{what} in hot-path (reachable via {trail})",
                    allowed=bool(sf and allow_covers(sf, line, "alloc"))))
            if depth >= max_depth:
                continue
            for cal in callees.get(usr, ()):
                if cal in defs and cal not in seen:
                    seen.add(cal)
                    work.append((cal, depth + 1,
                                 f"{trail} -> {defs[cal][2]}"))
        return findings

    return engine


# --------------------------------------------------------------------------
# Optional clang front-end for the dataflow rules
# --------------------------------------------------------------------------

def try_clang_frontend(root, compile_commands):
    """Builds a front-end (the TextFrontend interface) over libclang, or
    returns None when the bindings are unavailable.

    view() re-derives comment/string-free code lines from libclang's
    token stream — each token is placed back at its source line/column,
    so the shared rule regexes see the same layout the text lexer
    produces. functions() takes definitions and brace extents from the
    AST instead of the FUNC_DEF heuristic. Any per-file parse failure
    falls back to the text front-end for that file, so a broken include
    path degrades precision, never verdicts."""
    try:
        from clang import cindex
        index = cindex.Index.create()
    except Exception:
        return None

    cc_dir = (os.path.dirname(compile_commands)
              if compile_commands else None)

    class ClangFrontend:
        name = "clang"

        def __init__(self):
            self._tus: dict = {}
            self._views: dict = {}
            self._funcs: dict = {}

        def _tu(self, sf):
            if sf.path in self._tus:
                return self._tus[sf.path]
            tu = None
            try:
                path = os.path.join(root, sf.path)
                args = ["-std=c++20", f"-I{os.path.join(root, 'src')}",
                        f"-I{root}"]
                if cc_dir:
                    args.append(f"-I{os.path.join(cc_dir, '..')}")
                tu = index.parse(path, args=args)
            except Exception:
                tu = None
            self._tus[sf.path] = tu
            return tu

        def view(self, sf):
            if sf.path in self._views:
                return self._views[sf.path]
            out = sf  # fall back to the text lexer's view
            tu = self._tu(sf)
            if tu is not None:
                try:
                    out = self._view_from_tokens(sf, tu)
                except Exception:
                    out = sf
            self._views[sf.path] = out
            return out

        def _view_from_tokens(self, sf, tu):
            from clang.cindex import TokenKind
            grid = [[" "] * len(line) for line in sf.raw_lines]

            def place(line, col, text):
                if not (1 <= line <= len(grid)):
                    return
                row = grid[line - 1]
                for i, ch in enumerate(text):
                    at = col - 1 + i
                    if at >= len(row):
                        row.extend(" " * (at - len(row) + 1))
                    row[at] = ch

            for tok in tu.cursor.get_tokens():
                loc = tok.location
                spelling = tok.spelling
                if tok.kind == TokenKind.COMMENT:
                    # Keep only the markers the linter itself consumes.
                    if ("DNSGUARD_LINT_ALLOW" in spelling
                            or "NOLINT" in spelling):
                        place(loc.line, loc.column,
                              spelling.splitlines()[0])
                    continue
                if tok.kind == TokenKind.LITERAL and spelling[:1] in "\"'":
                    place(loc.line, loc.column,
                          spelling[0] + " " * (len(spelling) - 2)
                          + spelling[-1] if len(spelling) > 1 else spelling)
                    continue
                if "\n" in spelling:  # raw string or other multi-liner
                    continue
                place(loc.line, loc.column, spelling)

            view = SourceFile(path=sf.path)
            view.raw_lines = sf.raw_lines
            view.code_lines = ["".join(row) for row in grid]
            view.allows = sf.allows
            return view

        def functions(self, sf):
            if sf.path in self._funcs:
                return self._funcs[sf.path]
            tu = self._tu(sf)
            out = None
            if tu is not None:
                try:
                    out = self._functions_from_ast(sf, tu)
                except Exception:
                    out = None
            if out is None:
                out = extract_functions(self.view(sf))
            self._funcs[sf.path] = out
            return out

        def _functions_from_ast(self, sf, tu):
            from clang.cindex import CursorKind
            view = self.view(sf)
            text = "\n".join(view.code_lines)
            line_starts = [0]
            for i, c in enumerate(text):
                if c == "\n":
                    line_starts.append(i + 1)
            main_file = os.path.join(root, sf.path)
            kinds = (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                     CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR)
            funcs = []

            def visit(cur):
                if (cur.kind in kinds and cur.is_definition()
                        and cur.location.file
                        and os.path.samefile(cur.location.file.name,
                                             main_file)):
                    start = cur.extent.start.line
                    end = min(cur.extent.end.line, len(view.code_lines))
                    if 1 <= start <= end:
                        seg_start = line_starts[start - 1]
                        seg_end = (line_starts[end] - 1
                                   if end < len(line_starts)
                                   else len(text))
                        seg = text[seg_start:seg_end]
                        brace = seg.find("{")
                        if brace != -1:
                            brace_line = start + seg.count("\n", 0, brace)
                            parent = cur.semantic_parent
                            qual = (f"{parent.spelling}::{cur.spelling}"
                                    if parent is not None and parent.kind in
                                    (CursorKind.CLASS_DECL,
                                     CursorKind.STRUCT_DECL,
                                     CursorKind.CLASS_TEMPLATE)
                                    else cur.spelling)
                            funcs.append(FunctionDef(
                                qualified=qual,
                                name=cur.spelling.lstrip("~"),
                                file=sf.path,
                                start_line=brace_line,
                                end_line=end,
                                body=seg[brace + 1:],
                            ))
                for child in cur.get_children():
                    visit(child)

            visit(tu.cursor)
            return funcs

    return ClangFrontend()


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather_sources(root, paths):
    rels = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(absolute):
            for dirpath, _, names in os.walk(absolute):
                for nm in sorted(names):
                    if nm.endswith(CPP_EXTS):
                        rels.append(os.path.relpath(
                            os.path.join(dirpath, nm), root))
        elif absolute.endswith(CPP_EXTS):
            rels.append(os.path.relpath(absolute, root))
    return [load_source(root, rel) for rel in sorted(set(rels))]


def find_compile_commands(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in ("build", "build-san", "."):
        p = os.path.join(root, cand, "compile_commands.json")
        if os.path.isfile(p):
            return p
    return None


def run(argv=None):
    ap = argparse.ArgumentParser(
        prog="dnsguard_lint.py",
        description="Project-invariant static analysis for dnsguard.")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files/dirs to lint (default: src/ and bench/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--rule", action="append", choices=RULES, default=None,
                    help="run only the named rule(s)")
    ap.add_argument("--only", action="append", default=None,
                    metavar="RULE[,RULE]",
                    help="comma-separated rule selection (same as repeated "
                         "--rule; faster local iteration)")
    ap.add_argument("--list-rules", action="store_true",
                    help="list rules with their one-line invariants and "
                         "allow-tokens, then exit")
    ap.add_argument("--engine", choices=("auto", "clang", "text"),
                    default="auto",
                    help="front-end for the call-graph/dataflow rules "
                         "(default auto: clang when libclang is "
                         "importable, else text)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json for the clang engine")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any unannotated finding")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write the full report (findings + annotation "
                         "census) to this file")
    ap.add_argument("--sarif", dest="sarif_out", default=None,
                    help="write a SARIF 2.1.0 report to this file (CI "
                         "code annotations)")
    ap.add_argument("--check-baseline", default=None, metavar="BASELINE",
                    help="fail if the src/ annotation counts (total and "
                         "per-token) exceed the budgets recorded in this "
                         "baseline.json")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule:16} ALLOW({ALLOW_TOKEN[rule]})")
            print(f"{'':16} {RULE_HELP[rule]}")
        return 0

    root = args.root or os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or ["src", "bench"]
    sources = gather_sources(root, paths)
    if not sources:
        print("dnsguard-lint: no sources found", file=sys.stderr)
        return 2
    rules = list(args.rule) if args.rule else []
    for only in (args.only or []):
        for name in only.split(","):
            name = name.strip()
            if name and name not in RULES:
                print(f"dnsguard-lint: unknown rule '{name}' "
                      f"(see --list-rules)", file=sys.stderr)
                return 2
            if name:
                rules.append(name)
    rules = rules or list(RULES)

    compile_commands = find_compile_commands(root, args.compile_commands)
    frontend = None
    dataflow_rules = {"shard-isolation", "determinism", "decode-bounds"}
    if args.engine in ("auto", "clang") and dataflow_rules & set(rules):
        frontend = try_clang_frontend(root, compile_commands)

    findings = []
    clang_used = False
    if "hot-path-alloc" in rules:
        engine = None
        if args.engine in ("auto", "clang"):
            engine = try_clang_engine(root, compile_commands)
        clang_used = clang_used or engine is not None
        findings += (engine or check_hot_path_alloc)(sources)
    clang_capable = ({"hot-path-alloc"} | dataflow_rules) & set(rules)
    if (args.engine == "clang" and clang_capable
            and not (clang_used or frontend)):
        print("dnsguard-lint: --engine=clang requested but libclang "
              "is unavailable", file=sys.stderr)
        return 2
    if "drop-reason" in rules:
        findings += check_drop_reason(sources)
    if "bounded-state" in rules:
        findings += check_bounded_state(sources)
    if "sim-time-purity" in rules:
        findings += check_sim_time(sources)
    if "shard-isolation" in rules:
        findings += check_shard_isolation(sources, frontend)
    if "determinism" in rules:
        findings += check_determinism(sources, frontend)
    if "decode-bounds" in rules:
        findings += check_decode_bounds(sources, frontend)
    clang_used = clang_used or frontend is not None
    engine_name = "clang" if clang_used else "text"
    findings += check_annotations(sources)

    counts = count_annotations(sources)
    if args.check_baseline:
        findings += check_baseline(counts, args.check_baseline)

    errors = [f for f in findings if not f.allowed]
    allowed = [f for f in findings if f.allowed]

    if not args.quiet:
        for f in sorted(errors, key=lambda f: (f.file, f.line)):
            print(f.format())
            if f.context:
                print(f"    {f.context}")
        print(f"dnsguard-lint [{engine_name} engine]: "
              f"{len(errors)} finding(s), {len(allowed)} annotated, "
              f"{counts['allow_total']} ALLOW / "
              f"{counts['nolint_total']} NOLINT across src/")

    if args.json_out:
        report = {
            "engine": engine_name,
            "rules": rules,
            "findings": [asdict(f) for f in findings],
            "error_count": len(errors),
            "allowed_count": len(allowed),
            "annotations": counts,
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if args.sarif_out:
        with open(args.sarif_out, "w", encoding="utf-8") as f:
            json.dump(to_sarif(findings, rules, engine_name), f, indent=2)
            f.write("\n")

    if errors and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(run())
